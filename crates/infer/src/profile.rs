//! Per-path dataset profiling with fusion provenance.
//!
//! The fused schema says *what* a dataset looks like — a field is
//! optional, a path is a `Str + Null` union — but not *which records
//! made it so*. [`Profiling`] is a [`Fuser`] strategy whose accumulator
//! carries, next to the fused schema, one [`PathProfile`] per record
//! path: presence counts, a type-kind histogram, string/array/record
//! length histograms (the obs crate's log₂ buckets), numeric min/max,
//! and **provenance** lines:
//!
//! * the line that first saw the path (per kind — so each union branch
//!   has its own introducing line);
//! * the line whose *absence* of a key demoted it to optional.
//!
//! Everything in the accumulator is a commutative monoid — counts add,
//! lines combine by minimum ("smallest line wins"), histograms add
//! bucket-wise — so profiles merge associatively and commutatively and
//! ride the same parallel reduce as fusion itself (Theorems 5.4/5.5).
//! The result is independent of partitioning and thread count, and the
//! serialized report is byte-identical across runs.
//!
//! ## The absence monoid
//!
//! "Missing at line N" is the subtle part: a partition that has never
//! seen path `$.a.b` cannot know the line is missing anything. Two
//! rules cover sequential absorption into an accumulator:
//!
//! 1. a record at line `L` has object occurrences at parent `P` and a
//!    *known* child key `k` is absent from at least one of them → `k`
//!    was missing at `L`;
//! 2. a record at line `L` introduces a *new* key `k` under `P`, and
//!    the accumulator already has record occurrences at `P` → every one
//!    of those earlier objects lacked `k`, so `k` was missing at `P`'s
//!    first record line.
//!
//! and one rule covers cross-partition merges: if a child path exists
//! in only one side, the other side's record occurrences at the parent
//! all lacked it, so its first record line is an absence candidate. All
//! candidates combine by minimum, which is what makes the merge a true
//! monoid (verified by the `profile_laws` property tests).
//!
//! Absence is only counted against *record* occurrences at the parent:
//! a `Num` at `$.a` does not demote `$.a.b` — matching fusion, where
//! optionality lives inside the record branch of a union.

use crate::fuse::FuseConfig;
use crate::fuser::Fuser;
use crate::incremental::Incremental;
use std::collections::{BTreeMap, BTreeSet};
use typefuse_json::events::{Event, EventParser};
use typefuse_json::{ErrorKind, ParserOptions, Value};
use typefuse_obs::{JsonWriter, LogHistogram};
use typefuse_types::{ArrayType, Field, RecordType, Type, TypeKind};

const KINDS: usize = TypeKind::ALL.len();
const KIND_RECORD: usize = TypeKind::Record as usize;
/// Sentinel for "kind not seen yet" in the first-line table.
const NO_LINE: u64 = u64::MAX;

/// The mergeable per-path statistics and provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct PathProfile {
    /// Records containing the path at least once.
    pub count: u64,
    /// Value occurrences by kind (a path inside an array can occur many
    /// times per record), indexed by [`TypeKind`] code.
    kind_counts: [u64; KINDS],
    /// Smallest line that saw each kind ([`NO_LINE`] = never) — the
    /// union-branch provenance.
    kind_first_line: [u64; KINDS],
    /// Smallest line at which a record occurrence of the parent lacked
    /// this key; `None` means the path was never absent (mandatory).
    pub first_absent_line: Option<u64>,
    /// String value byte lengths.
    pub str_len: LogHistogram,
    /// Array value element counts.
    pub arr_len: LogHistogram,
    /// Record value field counts.
    pub rec_width: LogHistogram,
    /// Smallest numeric value seen.
    pub num_min: Option<f64>,
    /// Largest numeric value seen.
    pub num_max: Option<f64>,
}

impl Default for PathProfile {
    fn default() -> Self {
        PathProfile {
            count: 0,
            kind_counts: [0; KINDS],
            kind_first_line: [NO_LINE; KINDS],
            first_absent_line: None,
            str_len: LogHistogram::new(),
            arr_len: LogHistogram::new(),
            rec_width: LogHistogram::new(),
            num_min: None,
            num_max: None,
        }
    }
}

impl PathProfile {
    /// Occurrences of the given kind at this path.
    pub fn kind_count(&self, kind: TypeKind) -> u64 {
        self.kind_counts[kind as usize]
    }

    /// The line that introduced the given kind at this path.
    pub fn first_line_of(&self, kind: TypeKind) -> Option<u64> {
        let line = self.kind_first_line[kind as usize];
        (line != NO_LINE).then_some(line)
    }

    /// The smallest line that saw this path at all.
    pub fn first_line(&self) -> Option<u64> {
        let line = *self.kind_first_line.iter().min().expect("non-empty");
        (line != NO_LINE).then_some(line)
    }

    /// The first line with a record (object) occurrence at this path —
    /// the reference point for child-absence provenance.
    pub fn record_first_line(&self) -> Option<u64> {
        self.first_line_of(TypeKind::Record)
    }

    /// Whether some parent occurrence lacked this key (the fused schema
    /// marks such fields optional).
    pub fn is_optional(&self) -> bool {
        self.first_absent_line.is_some()
    }

    /// The union branches present at this path: each seen kind with its
    /// occurrence count and introducing line, in paper kind order.
    pub fn branches(&self) -> Vec<(TypeKind, u64, u64)> {
        TypeKind::ALL
            .iter()
            .filter(|&&k| self.kind_counts[k as usize] > 0)
            .map(|&k| {
                (
                    k,
                    self.kind_counts[k as usize],
                    self.kind_first_line[k as usize],
                )
            })
            .collect()
    }

    fn note_absent(&mut self, line: u64) {
        self.first_absent_line = Some(self.first_absent_line.map_or(line, |l| l.min(line)));
    }

    fn merge(&mut self, other: &PathProfile) {
        self.count += other.count;
        for k in 0..KINDS {
            self.kind_counts[k] += other.kind_counts[k];
            self.kind_first_line[k] = self.kind_first_line[k].min(other.kind_first_line[k]);
        }
        if let Some(line) = other.first_absent_line {
            self.note_absent(line);
        }
        self.str_len.merge_from(&other.str_len);
        self.arr_len.merge_from(&other.arr_len);
        self.rec_width.merge_from(&other.rec_width);
        self.num_min = merge_opt(self.num_min, other.num_min, f64::min);
        self.num_max = merge_opt(self.num_max, other.num_max, f64::max);
    }

    fn write_json(&self, w: &mut JsonWriter, total: u64) {
        w.begin_object();
        w.key("count");
        w.number(self.count);
        w.key("ratio");
        w.float(if total == 0 {
            0.0
        } else {
            self.count as f64 / total as f64
        });
        if let Some(line) = self.first_line() {
            w.key("first_line");
            w.number(line);
        }
        w.key("optional");
        w.bool_value(self.is_optional());
        if let Some(line) = self.first_absent_line {
            w.key("first_absent_line");
            w.number(line);
        }
        w.key("kinds");
        w.begin_object();
        for (kind, count, line) in self.branches() {
            w.key(&kind.to_string());
            w.begin_object();
            w.key("count");
            w.number(count);
            w.key("first_line");
            w.number(line);
            w.end_object();
        }
        w.end_object();
        for (name, hist) in [
            ("str_len", &self.str_len),
            ("arr_len", &self.arr_len),
            ("rec_width", &self.rec_width),
        ] {
            if !hist.is_empty() {
                w.key(name);
                hist.report().write_json(w);
            }
        }
        if let (Some(min), Some(max)) = (self.num_min, self.num_max) {
            w.key("num_min");
            w.float(min);
            w.key("num_max");
            w.float(max);
        }
        w.end_object();
    }
}

fn merge_opt(a: Option<f64>, b: Option<f64>, pick: fn(f64, f64) -> f64) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(pick(x, y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Per-record observation of one path, before it is folded into the
/// accumulator. Built identically by the value walk and the event fold
/// (property-tested), which is what makes the two Map routes produce
/// byte-identical profiles.
#[derive(Debug, Default)]
struct RecordFacts {
    kinds: [u64; KINDS],
    str_lens: Vec<u64>,
    arr_lens: Vec<u64>,
    rec_widths: Vec<u64>,
    num_min: Option<f64>,
    num_max: Option<f64>,
    /// For record occurrences: key → occurrences containing it.
    present: BTreeMap<String, u64>,
}

impl RecordFacts {
    fn note_num(&mut self, value: f64) {
        self.num_min = merge_opt(self.num_min, Some(value), f64::min);
        self.num_max = merge_opt(self.num_max, Some(value), f64::max);
    }
}

type Facts = BTreeMap<String, RecordFacts>;

/// The [`Profiling`] accumulator: a fused schema plus per-path profiles
/// and the provenance index. Merge is associative and commutative.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileAcc {
    schema: Incremental,
    paths: BTreeMap<String, PathProfile>,
    /// Record paths → child key names ever seen present under them
    /// (rule 1 of the absence monoid needs the *known* children).
    children: BTreeMap<String, BTreeSet<String>>,
    /// Earliest malformed line, kept mergeable so a profiled run over
    /// parallel partitions reports the same first error as a sequential
    /// one.
    first_error: Option<(u64, typefuse_json::Error)>,
}

impl Default for ProfileAcc {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfileAcc {
    /// An empty accumulator with the default fusion configuration.
    pub fn new() -> Self {
        Self::with_config(FuseConfig::default())
    }

    /// An empty accumulator with an explicit fusion configuration.
    pub fn with_config(config: FuseConfig) -> Self {
        ProfileAcc {
            schema: Incremental::with_config(config),
            paths: BTreeMap::new(),
            children: BTreeMap::new(),
            first_error: None,
        }
    }

    /// Records absorbed (across merges).
    pub fn records(&self) -> u64 {
        self.schema.count()
    }

    /// The running fused schema.
    pub fn schema(&self) -> &Type {
        self.schema.schema()
    }

    /// The earliest malformed input line, if any was absorbed.
    pub fn first_error(&self) -> Option<(u64, &typefuse_json::Error)> {
        self.first_error.as_ref().map(|(line, e)| (*line, e))
    }

    /// Absorb one already-materialised value observed at `line`
    /// (1-based; for in-memory sources the record ordinal).
    pub fn absorb_value_at(&mut self, line: u64, value: &Value) {
        let mut facts = Facts::new();
        let mut path = String::from("$");
        observe_value(value, &mut path, &mut facts);
        self.schema.absorb(value);
        self.apply_facts(line, facts);
    }

    /// Absorb one NDJSON line through the event fold — no `Value` tree
    /// is materialised. Parse failures are recorded in the accumulator
    /// (mergeable, earliest line wins) rather than returned, so the
    /// partition fold keeps its infallible `absorb` shape.
    pub fn absorb_line(&mut self, line: u64, text: &str) {
        let mut facts = Facts::new();
        let mut parser = EventParser::with_options(text.as_bytes(), ParserOptions::default());
        let folded = observe_events_root(&mut parser, &mut facts);
        match folded.and_then(|ty| parser.finish().map(|()| ty)) {
            Ok(ty) => {
                self.schema.absorb_type(ty);
                self.apply_facts(line, facts);
            }
            Err(e) => self.note_error(line, e),
        }
    }

    /// Absorb one NDJSON line by materialising the `Value` tree first —
    /// the differential-testing twin of [`ProfileAcc::absorb_line`].
    pub fn absorb_line_as_value(&mut self, line: u64, text: &str) {
        match typefuse_json::parse_value(text) {
            Ok(value) => self.absorb_value_at(line, &value),
            Err(e) => self.note_error(line, e),
        }
    }

    /// Absorb an already inferred type: counts the record and fuses the
    /// schema but contributes no path statistics (they need the value).
    pub fn absorb_type_only(&mut self, ty: &Type) {
        self.schema.absorb_type(ty.clone());
    }

    fn note_error(&mut self, line: u64, error: typefuse_json::Error) {
        let replace = match &self.first_error {
            None => true,
            Some((l, e)) => (line, format!("{:?}", error.kind())) < (*l, format!("{:?}", e.kind())),
        };
        if replace {
            self.first_error = Some((line, error));
        }
    }

    /// Fold one record's observation in. Absence (phase A) is computed
    /// against the accumulator state *before* this record's presence
    /// lands (phase B), because rule 2 needs the parent's prior first
    /// record line.
    fn apply_facts(&mut self, line: u64, facts: Facts) {
        // Phase A: absence candidates.
        let mut absences: Vec<(String, u64)> = Vec::new();
        for (parent, f) in &facts {
            let obj_occ = f.kinds[KIND_RECORD];
            if obj_occ == 0 {
                continue;
            }
            let known = self.children.get(parent);
            let prior_record_first = self
                .paths
                .get(parent)
                .and_then(PathProfile::record_first_line);
            let mut names: BTreeSet<&str> = f.present.keys().map(String::as_str).collect();
            if let Some(known) = known {
                names.extend(known.iter().map(String::as_str));
            }
            for name in names {
                let present = f.present.get(name).copied().unwrap_or(0);
                let is_new = known.is_none_or(|s| !s.contains(name));
                // Rule 1: absent from some occurrence in this record.
                let mut candidate = (present < obj_occ).then_some(line);
                // Rule 2: new key, but the parent had earlier objects —
                // all of them lacked it.
                if is_new {
                    if let Some(earlier) = prior_record_first {
                        candidate = Some(candidate.map_or(earlier, |c| c.min(earlier)));
                    }
                }
                if let Some(c) = candidate {
                    absences.push((child_path(parent, name), c));
                }
            }
        }
        // Phase B: presence.
        for (path, f) in facts {
            if f.kinds[KIND_RECORD] > 0 {
                let kids = self.children.entry(path.clone()).or_default();
                for name in f.present.keys() {
                    kids.insert(name.clone());
                }
            }
            let entry = self.paths.entry(path).or_default();
            entry.count += 1;
            for k in 0..KINDS {
                entry.kind_counts[k] += f.kinds[k];
                if f.kinds[k] > 0 {
                    entry.kind_first_line[k] = entry.kind_first_line[k].min(line);
                }
            }
            for &len in &f.str_lens {
                entry.str_len.record(len);
            }
            for &len in &f.arr_lens {
                entry.arr_len.record(len);
            }
            for &width in &f.rec_widths {
                entry.rec_width.record(width);
            }
            entry.num_min = merge_opt(entry.num_min, f.num_min, f64::min);
            entry.num_max = merge_opt(entry.num_max, f.num_max, f64::max);
        }
        // Phase C: the candidates refer to paths that now exist.
        for (path, line) in absences {
            if let Some(entry) = self.paths.get_mut(&path) {
                entry.note_absent(line);
            }
        }
    }

    /// Merge another accumulator. The cross-partition absence rule runs
    /// against both *pre-merge* states: a child path present in only
    /// one side was absent from every record occurrence of its parent
    /// on the other side, whose first record line becomes a candidate.
    pub fn merge(&mut self, other: &ProfileAcc) {
        let mut fixes: Vec<(String, u64)> = Vec::new();
        for (parent, names) in &other.children {
            if let Some(line) = self
                .paths
                .get(parent)
                .and_then(PathProfile::record_first_line)
            {
                for name in names {
                    let child = child_path(parent, name);
                    if !self.paths.contains_key(&child) {
                        fixes.push((child, line));
                    }
                }
            }
        }
        for (parent, names) in &self.children {
            if let Some(line) = other
                .paths
                .get(parent)
                .and_then(PathProfile::record_first_line)
            {
                for name in names {
                    let child = child_path(parent, name);
                    if !other.paths.contains_key(&child) {
                        fixes.push((child, line));
                    }
                }
            }
        }
        for (path, profile) in &other.paths {
            self.paths.entry(path.clone()).or_default().merge(profile);
        }
        for (path, names) in &other.children {
            self.children
                .entry(path.clone())
                .or_default()
                .extend(names.iter().cloned());
        }
        self.schema.merge(&other.schema);
        if let Some((line, e)) = &other.first_error {
            self.note_error(*line, e.clone());
        }
        for (path, line) in fixes {
            if let Some(entry) = self.paths.get_mut(&path) {
                entry.note_absent(line);
            }
        }
    }

    /// Whether nothing (not even an error) has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.records() == 0 && self.paths.is_empty() && self.first_error.is_none()
    }

    /// Serialize the full accumulator state for a crash-recovery
    /// checkpoint. Every component round-trips exactly:
    /// the schema through the lossless [`typefuse_types::wire`] codec,
    /// integers as decimal strings, histograms via
    /// [`LogHistogram::to_compact`], numeric min/max as `f64::to_bits`,
    /// and the first error via [`typefuse_json::codec`] — so
    /// [`from_checkpoint_value`](ProfileAcc::from_checkpoint_value)
    /// restores a `==`-identical accumulator and the resumed fold is
    /// byte-identical to an uninterrupted one.
    pub fn checkpoint_value(&self) -> Value {
        use typefuse_json::codec::{error_to_value, u64_to_value};
        use typefuse_json::Map;
        let join = |xs: &[u64]| xs.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        let mut obj = Map::new();
        obj.insert(
            "schema",
            Value::from(typefuse_types::wire::to_wire(self.schema.schema())),
        );
        obj.insert("records", u64_to_value(self.schema.count()));
        if let Some((line, error)) = &self.first_error {
            let mut fe = Map::new();
            fe.insert("line", u64_to_value(*line));
            fe.insert("error", error_to_value(error));
            obj.insert("first_error", Value::Object(fe));
        }
        let mut children = Map::new();
        for (parent, names) in &self.children {
            let names: Vec<Value> = names.iter().map(|n| Value::from(n.clone())).collect();
            children.insert(parent.clone(), Value::Array(names));
        }
        obj.insert("children", Value::Object(children));
        let mut paths = Map::new();
        for (path, p) in &self.paths {
            let mut entry = Map::new();
            entry.insert("count", u64_to_value(p.count));
            entry.insert("kinds", Value::from(join(&p.kind_counts)));
            entry.insert("first", Value::from(join(&p.kind_first_line)));
            if let Some(line) = p.first_absent_line {
                entry.insert("absent", u64_to_value(line));
            }
            entry.insert("str_len", Value::from(p.str_len.to_compact()));
            entry.insert("arr_len", Value::from(p.arr_len.to_compact()));
            entry.insert("rec_width", Value::from(p.rec_width.to_compact()));
            if let Some(min) = p.num_min {
                entry.insert("num_min", u64_to_value(min.to_bits()));
            }
            if let Some(max) = p.num_max {
                entry.insert("num_max", u64_to_value(max.to_bits()));
            }
            paths.insert(path.clone(), Value::Object(entry));
        }
        obj.insert("paths", Value::Object(paths));
        Value::Object(obj)
    }

    /// Restore an accumulator serialized by
    /// [`checkpoint_value`](ProfileAcc::checkpoint_value), resuming
    /// fusion under `config` (the config is not checkpointed — the
    /// service re-derives it from its job configuration, and it must
    /// match the original run for the incremental ≡ batch law to hold).
    pub fn from_checkpoint_value(v: &Value, config: FuseConfig) -> Result<Self, String> {
        use typefuse_json::codec::{error_from_value, opt_u64_from_value, u64_from_value};
        let split = |text: &str| -> Result<[u64; KINDS], String> {
            let mut out = [0u64; KINDS];
            let parts: Vec<&str> = text.split(',').collect();
            if parts.len() != KINDS {
                return Err(format!("expected {KINDS} kind slots, got {}", parts.len()));
            }
            for (slot, part) in out.iter_mut().zip(parts) {
                *slot = part.parse().map_err(|e| format!("bad kind slot: {e}"))?;
            }
            Ok(out)
        };
        let str_field = |v: &Value, name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Value::as_str)
                .map(String::from)
                .ok_or_else(|| format!("profile path missing `{name}`"))
        };
        let schema = typefuse_types::wire::from_wire(
            v.get("schema")
                .and_then(Value::as_str)
                .ok_or_else(|| "profile missing `schema`".to_string())?,
        )?;
        let records = v
            .get("records")
            .ok_or_else(|| "profile missing `records`".to_string())
            .and_then(u64_from_value)?;
        let first_error = match v.get("first_error") {
            None | Some(Value::Null) => None,
            Some(fe) => {
                let line = fe
                    .get("line")
                    .ok_or_else(|| "first_error missing `line`".to_string())
                    .and_then(u64_from_value)?;
                let error = fe
                    .get("error")
                    .ok_or_else(|| "first_error missing `error`".to_string())
                    .and_then(error_from_value)?;
                Some((line, error))
            }
        };
        let mut children = BTreeMap::new();
        if let Some(map) = v.get("children").and_then(Value::as_object) {
            for (parent, names) in map.iter() {
                let names = names
                    .as_array()
                    .ok_or_else(|| "children value is not an array".to_string())?;
                let mut set = BTreeSet::new();
                for name in names {
                    set.insert(
                        name.as_str()
                            .ok_or_else(|| "child name is not a string".to_string())?
                            .to_string(),
                    );
                }
                children.insert(parent.to_string(), set);
            }
        }
        let mut paths = BTreeMap::new();
        let path_map = v
            .get("paths")
            .and_then(Value::as_object)
            .ok_or_else(|| "profile missing `paths`".to_string())?;
        for (path, entry) in path_map.iter() {
            let profile = PathProfile {
                count: entry
                    .get("count")
                    .ok_or_else(|| "profile path missing `count`".to_string())
                    .and_then(u64_from_value)?,
                kind_counts: split(&str_field(entry, "kinds")?)?,
                kind_first_line: split(&str_field(entry, "first")?)?,
                first_absent_line: opt_u64_from_value(entry.get("absent"))?,
                str_len: LogHistogram::from_compact(&str_field(entry, "str_len")?)?,
                arr_len: LogHistogram::from_compact(&str_field(entry, "arr_len")?)?,
                rec_width: LogHistogram::from_compact(&str_field(entry, "rec_width")?)?,
                num_min: opt_u64_from_value(entry.get("num_min"))?.map(f64::from_bits),
                num_max: opt_u64_from_value(entry.get("num_max"))?.map(f64::from_bits),
            };
            paths.insert(path.to_string(), profile);
        }
        Ok(ProfileAcc {
            schema: Incremental::resume(schema, records, config),
            paths,
            children,
            first_error,
        })
    }

    /// Finish into the immutable dataset profile.
    pub fn finish(self) -> ProfileReport {
        ProfileReport {
            records: self.schema.count(),
            schema: self.schema.into_schema(),
            paths: self.paths,
        }
    }
}

fn child_path(parent: &str, name: &str) -> String {
    format!("{parent}.{name}")
}

/// The profiling Reduce strategy: plug into the engine's trait-driven
/// reduce to get per-path profiles with the same topology code as plain
/// fusion.
///
/// Through the bare [`Fuser`] interface, `absorb_value` numbers records
/// by a per-accumulator ordinal (`records() + 1`), so provenance
/// "lines" are partition-local. Line-exact provenance comes from the
/// pipeline's profiled entry point, which feeds
/// [`ProfileAcc::absorb_line`] / [`ProfileAcc::absorb_value_at`] with
/// real input line numbers.
#[derive(Debug, Clone, Copy, Default)]
pub struct Profiling {
    /// Fusion configuration for the embedded schema.
    pub config: FuseConfig,
}

impl Fuser for Profiling {
    type Acc = ProfileAcc;

    fn empty(&self) -> ProfileAcc {
        ProfileAcc::with_config(self.config)
    }

    fn absorb_type(&self, acc: &mut ProfileAcc, ty: &Type) {
        acc.absorb_type_only(ty);
    }

    fn absorb_value(&self, acc: &mut ProfileAcc, value: &Value) {
        let ordinal = acc.records() + 1;
        acc.absorb_value_at(ordinal, value);
    }

    fn merge(&self, acc: &mut ProfileAcc, other: &ProfileAcc) {
        acc.merge(other);
    }

    fn is_empty_acc(&self, acc: &ProfileAcc) -> bool {
        acc.is_empty()
    }

    fn finish_schema(&self, acc: ProfileAcc) -> Type {
        acc.finish().schema
    }
}

/// A finished dataset profile: the fused schema plus one
/// [`PathProfile`] per record path, deterministically ordered.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Total records profiled.
    pub records: u64,
    /// The fused schema.
    pub schema: Type,
    /// Per-path profiles, keyed by rendered path (`$`, `$.a`,
    /// `$.kw[].rank`). The root path `$` profiles the records
    /// themselves.
    pub paths: BTreeMap<String, PathProfile>,
}

impl ProfileReport {
    /// Look up one path's profile.
    pub fn get(&self, path: &str) -> Option<&PathProfile> {
        self.paths.get(path)
    }

    /// Profiles as rows sorted by descending presence count, then path
    /// — the "top-k presence" order.
    pub fn rows(&self) -> Vec<(&str, &PathProfile)> {
        let mut rows: Vec<(&str, &PathProfile)> =
            self.paths.iter().map(|(p, v)| (p.as_str(), v)).collect();
        rows.sort_by(|a, b| b.1.count.cmp(&a.1.count).then_with(|| a.0.cmp(b.0)));
        rows
    }

    /// Serialize the profile report as one JSON object.
    ///
    /// Deterministic byte-for-byte: paths are `BTreeMap`-ordered, every
    /// aggregate is a min/max/sum (partition-order independent), and
    /// numbers go through the single shared
    /// [`JsonWriter`] formatter. CI diffs
    /// this output across thread counts and Map routes.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("records");
        w.number(self.records);
        w.key("schema");
        w.string(&self.schema.to_string());
        w.key("paths");
        w.begin_object();
        for (path, profile) in &self.paths {
            w.key(path);
            profile.write_json(&mut w, self.records);
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

// ---------------------------------------------------------------------
// Observation builders: one per Map route, equal by property test.
// ---------------------------------------------------------------------

/// Tree route: walk a materialised value, collecting facts per path.
fn observe_value(v: &Value, path: &mut String, facts: &mut Facts) {
    match v {
        Value::Null => facts.entry(path.clone()).or_default().kinds[TypeKind::Null as usize] += 1,
        Value::Bool(_) => {
            facts.entry(path.clone()).or_default().kinds[TypeKind::Bool as usize] += 1
        }
        Value::Number(n) => {
            let f = facts.entry(path.clone()).or_default();
            f.kinds[TypeKind::Num as usize] += 1;
            f.note_num(n.as_f64());
        }
        Value::String(s) => {
            let f = facts.entry(path.clone()).or_default();
            f.kinds[TypeKind::Str as usize] += 1;
            f.str_lens.push(s.len() as u64);
        }
        Value::Object(map) => {
            {
                let f = facts.entry(path.clone()).or_default();
                f.kinds[KIND_RECORD] += 1;
                f.rec_widths.push(map.len() as u64);
                for (key, _) in map.iter() {
                    *f.present.entry(key.to_string()).or_insert(0) += 1;
                }
            }
            for (key, child) in map.iter() {
                let len = path.len();
                path.push('.');
                path.push_str(key);
                observe_value(child, path, facts);
                path.truncate(len);
            }
        }
        Value::Array(elems) => {
            {
                let f = facts.entry(path.clone()).or_default();
                f.kinds[TypeKind::Array as usize] += 1;
                f.arr_lens.push(elems.len() as u64);
            }
            let len = path.len();
            path.push_str("[]");
            for child in elems {
                observe_value(child, path, facts);
            }
            path.truncate(len);
        }
    }
}

/// Event route: fold the token stream into the record's type (exactly
/// like [`crate::streaming`]) while collecting the same facts as
/// [`observe_value`] — still no `Value` tree.
///
/// Assumes strict parser options (the pipeline default): duplicate keys
/// error out before they could desynchronise the two observation
/// builders.
fn observe_events_root(
    events: &mut EventParser<'_>,
    facts: &mut Facts,
) -> typefuse_json::Result<Type> {
    let first = next_or_eof(events)?;
    let mut path = String::from("$");
    observe_event_value(events, first, &mut path, facts)
}

fn next_or_eof<'a>(events: &mut EventParser<'a>) -> typefuse_json::Result<Event<'a>> {
    match events.next_event()? {
        Some(e) => Ok(e),
        None => Err(typefuse_json::Error::at(
            ErrorKind::UnexpectedEof,
            events.source_position(),
        )),
    }
}

fn observe_event_value<'a>(
    events: &mut EventParser<'a>,
    event: Event<'a>,
    path: &mut String,
    facts: &mut Facts,
) -> typefuse_json::Result<Type> {
    Ok(match event {
        Event::Null => {
            facts.entry(path.clone()).or_default().kinds[TypeKind::Null as usize] += 1;
            Type::Null
        }
        Event::Bool(_) => {
            facts.entry(path.clone()).or_default().kinds[TypeKind::Bool as usize] += 1;
            Type::Bool
        }
        Event::Number(n) => {
            let f = facts.entry(path.clone()).or_default();
            f.kinds[TypeKind::Num as usize] += 1;
            f.note_num(n.as_f64());
            Type::Num
        }
        Event::String(s) => {
            let f = facts.entry(path.clone()).or_default();
            f.kinds[TypeKind::Str as usize] += 1;
            f.str_lens.push(s.len() as u64);
            Type::Str
        }
        Event::ObjectStart => {
            let mut fields: Vec<Field> = Vec::with_capacity(8);
            loop {
                match next_or_eof(events)? {
                    Event::ObjectEnd => break,
                    Event::Key(name) => {
                        let first = next_or_eof(events)?;
                        let len = path.len();
                        path.push('.');
                        path.push_str(&name);
                        let ty = observe_event_value(events, first, path, facts)?;
                        path.truncate(len);
                        fields.push(Field::required(name.into_owned(), ty));
                    }
                    _ => unreachable!("parser yields only Key or ObjectEnd inside an object"),
                }
            }
            {
                let f = facts.entry(path.clone()).or_default();
                f.kinds[KIND_RECORD] += 1;
                f.rec_widths.push(fields.len() as u64);
                for field in &fields {
                    *f.present.entry(field.name.clone()).or_insert(0) += 1;
                }
            }
            Type::Record(RecordType::new(fields).expect("strict parser enforces key uniqueness"))
        }
        Event::ArrayStart => {
            let mut elems: Vec<Type> = Vec::new();
            let len = path.len();
            path.push_str("[]");
            loop {
                match next_or_eof(events)? {
                    Event::ArrayEnd => break,
                    e => elems.push(observe_event_value(events, e, path, facts)?),
                }
            }
            path.truncate(len);
            {
                let f = facts.entry(path.clone()).or_default();
                f.kinds[TypeKind::Array as usize] += 1;
                f.arr_lens.push(elems.len() as u64);
            }
            Type::Array(ArrayType::new(elems))
        }
        Event::Key(_) | Event::ObjectEnd | Event::ArrayEnd => {
            unreachable!("parser yields structurally balanced events")
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::json;

    fn acc_of(lines: &[&str]) -> ProfileAcc {
        let mut acc = ProfileAcc::new();
        for (i, line) in lines.iter().enumerate() {
            acc.absorb_line(i as u64 + 1, line);
        }
        acc
    }

    #[test]
    fn counts_presence_and_kinds() {
        let acc = acc_of(&[r#"{"a": 1, "b": "xy"}"#, r#"{"a": 2}"#, r#"{"a": null}"#]);
        let profile = acc.finish();
        assert_eq!(profile.records, 3);
        let a = profile.get("$.a").unwrap();
        assert_eq!(a.count, 3);
        assert_eq!(a.kind_count(TypeKind::Num), 2);
        assert_eq!(a.kind_count(TypeKind::Null), 1);
        assert_eq!(a.first_line_of(TypeKind::Null), Some(3));
        assert_eq!(a.first_line(), Some(1));
        assert!(!a.is_optional(), "a is present in every record");
        let b = profile.get("$.b").unwrap();
        assert_eq!(b.count, 1);
        assert_eq!(b.str_len.count(), 1);
        let root = profile.get("$").unwrap();
        assert_eq!(root.count, 3);
        assert_eq!(root.rec_width.count(), 3);
    }

    #[test]
    fn absence_rule_1_known_key_missing_later() {
        // b is known from line 1; line 2 lacks it.
        let acc = acc_of(&[r#"{"a": 1, "b": 2}"#, r#"{"a": 3}"#]);
        let profile = acc.finish();
        assert_eq!(profile.get("$.b").unwrap().first_absent_line, Some(2));
        assert_eq!(profile.get("$.a").unwrap().first_absent_line, None);
    }

    #[test]
    fn absence_rule_2_new_key_demoted_by_earlier_records() {
        // b first appears at line 3, so lines 1 and 2 lacked it — the
        // earliest of them is the demoting line.
        let acc = acc_of(&[r#"{"a": 1}"#, r#"{"a": 2}"#, r#"{"a": 3, "b": true}"#]);
        assert_eq!(acc.finish().get("$.b").unwrap().first_absent_line, Some(1));
    }

    #[test]
    fn absence_within_one_record_across_array_elements() {
        let acc = acc_of(&[r#"{"kw": [{"rank": 1}, {}]}"#]);
        let profile = acc.finish();
        assert_eq!(
            profile.get("$.kw[].rank").unwrap().first_absent_line,
            Some(1)
        );
        assert_eq!(profile.get("$.kw[]").unwrap().count, 1);
        assert_eq!(
            profile.get("$.kw[]").unwrap().kind_count(TypeKind::Record),
            2
        );
    }

    #[test]
    fn non_record_parent_occurrences_do_not_demote() {
        // $.a is Num at line 1; that does not make $.a.x optional.
        let acc = acc_of(&[r#"{"a": 5}"#, r#"{"a": {"x": 1}}"#]);
        let profile = acc.finish();
        assert_eq!(profile.get("$.a.x").unwrap().first_absent_line, None);
        // But an empty object at line 3 does.
        let acc = acc_of(&[r#"{"a": 5}"#, r#"{"a": {"x": 1}}"#, r#"{"a": {}}"#]);
        assert_eq!(
            acc.finish().get("$.a.x").unwrap().first_absent_line,
            Some(3)
        );
    }

    #[test]
    fn merge_fixes_single_sided_paths() {
        // Partition A saw only {a}, partition B only {a, b}: after the
        // merge, b's demoting line is A's first record line.
        let mut a = ProfileAcc::new();
        a.absorb_line(1, r#"{"a": 1}"#);
        let mut b = ProfileAcc::new();
        b.absorb_line(2, r#"{"a": 2, "b": "x"}"#);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.clone().finish(), ba.clone().finish(), "commutative");
        assert_eq!(ab.finish().get("$.b").unwrap().first_absent_line, Some(1));
    }

    #[test]
    fn merge_matches_sequential_absorption() {
        let lines = [
            r#"{"a": 1, "b": "x"}"#,
            r#"{"a": null}"#,
            r#"{"a": 1, "c": [true, {"d": 2}]}"#,
            r#"{"a": "s", "c": []}"#,
        ];
        let sequential = acc_of(&lines).finish();
        for split in 1..lines.len() {
            let mut left = ProfileAcc::new();
            for (i, line) in lines[..split].iter().enumerate() {
                left.absorb_line(i as u64 + 1, line);
            }
            let mut right = ProfileAcc::new();
            for (i, line) in lines[split..].iter().enumerate() {
                right.absorb_line((split + i) as u64 + 1, line);
            }
            left.merge(&right);
            assert_eq!(left.finish(), sequential, "split at {split}");
        }
    }

    #[test]
    fn event_and_value_routes_agree() {
        let lines = [
            r#"{"a": 1, "b": ["x", {"c": null}], "d": {"e": [[true]]}}"#,
            r#"[1, "a", {"k": []}]"#,
            r#""scalar""#,
            r#"{"a": 2.5}"#,
        ];
        let mut via_events = ProfileAcc::new();
        let mut via_values = ProfileAcc::new();
        for (i, line) in lines.iter().enumerate() {
            via_events.absorb_line(i as u64 + 1, line);
            via_values.absorb_line_as_value(i as u64 + 1, line);
        }
        let a = via_events.finish();
        let b = via_values.finish();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn numeric_and_length_statistics() {
        let acc = acc_of(&[r#"{"n": 3, "s": "abcd"}"#, r#"{"n": -1.5, "s": ""}"#]);
        let profile = acc.finish();
        let n = profile.get("$.n").unwrap();
        assert_eq!(n.num_min, Some(-1.5));
        assert_eq!(n.num_max, Some(3.0));
        let s = profile.get("$.s").unwrap();
        let lens = s.str_len.report();
        assert_eq!((lens.count, lens.min, lens.max), (2, 0, 4));
    }

    #[test]
    fn parse_errors_are_mergeable_and_earliest_wins() {
        let mut acc = ProfileAcc::new();
        acc.absorb_line(5, "{broken");
        acc.absorb_line(2, "also broken");
        assert_eq!(acc.first_error().unwrap().0, 2);

        let mut other = ProfileAcc::new();
        other.absorb_line(1, "[1,]");
        acc.merge(&other);
        assert_eq!(acc.first_error().unwrap().0, 1);
        // Errors keep the accumulator non-empty so the engine's
        // identity filter cannot drop them.
        let mut error_only = ProfileAcc::new();
        error_only.absorb_line(1, "nope");
        assert!(!error_only.is_empty());
    }

    #[test]
    fn profiling_fuser_schema_matches_plain_fusion() {
        use crate::{fuse_all, infer_type};
        let values = [
            json!({"a": 1, "b": "x"}),
            json!({"a": null}),
            json!({"a": 1, "c": [true]}),
        ];
        let profiling = Profiling::default();
        let mut acc = profiling.empty();
        for v in &values {
            profiling.absorb_value(&mut acc, v);
        }
        let types: Vec<Type> = values.iter().map(infer_type).collect();
        assert_eq!(profiling.finish_schema(acc), fuse_all(&types));
    }

    #[test]
    fn profile_json_shape() {
        let profile = acc_of(&[r#"{"a": 1}"#, r#"{"a": "xy", "b": null}"#]).finish();
        let json = profile.to_json();
        for needle in [
            r#""records":2"#,
            r#""schema":"{a: Num + Str, b: Null?}""#,
            r#""$.a":{"count":2"#,
            r#""first_absent_line":1"#,
            r#""kinds":{"Num":{"count":1,"first_line":1},"Str":{"count":1,"first_line":2}}"#,
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // It parses with the workspace's own parser.
        typefuse_json::parse_value(&json).expect("profile JSON is valid JSON");
    }

    #[test]
    fn checkpoint_round_trips_and_resumes_identically() {
        let lines = [
            r#"{"a": 1, "b": "x"}"#,
            r#"{"a": null}"#,
            "not json at all",
            r#"{"a": 1, "c": [true, {"d": 2.5}]}"#,
            r#"{"a": "s", "c": []}"#,
        ];
        let full = acc_of(&lines);
        for cut in 0..lines.len() {
            let mut before = ProfileAcc::new();
            for (i, line) in lines[..cut].iter().enumerate() {
                before.absorb_line(i as u64 + 1, line);
            }
            let value = before.checkpoint_value();
            // Through a real serialize/parse cycle, as on disk.
            let reparsed = typefuse_json::parse_value(&value.to_string()).unwrap();
            let mut resumed =
                ProfileAcc::from_checkpoint_value(&reparsed, FuseConfig::default()).unwrap();
            assert_eq!(resumed, before, "restore at cut {cut} is exact");
            for (i, line) in lines[cut..].iter().enumerate() {
                resumed.absorb_line((cut + i) as u64 + 1, line);
            }
            assert_eq!(resumed, full, "resume at cut {cut} matches full fold");
            assert_eq!(
                resumed.clone().finish().to_json(),
                full.clone().finish().to_json(),
                "serialized profile at cut {cut}"
            );
        }
        assert!(ProfileAcc::from_checkpoint_value(
            &typefuse_json::parse_value("{}").unwrap(),
            FuseConfig::default()
        )
        .is_err());
    }

    #[test]
    fn rows_order_by_count_then_path() {
        let profile = acc_of(&[r#"{"a": 1, "z": 1}"#, r#"{"a": 2}"#]).finish();
        let rows = profile.rows();
        assert_eq!(rows[0].0, "$");
        assert_eq!(rows[1].0, "$.a");
        assert_eq!(rows[2].0, "$.z");
    }

    #[test]
    fn empty_accumulator_finishes_empty() {
        let profile = ProfileAcc::new().finish();
        assert_eq!(profile.records, 0);
        assert_eq!(profile.schema, Type::Bottom);
        assert!(profile.paths.is_empty());
        assert!(ProfileAcc::new().is_empty());
    }
}
