//! Incremental schema maintenance (Section 7).
//!
//! "Another benefit of our approach is its ability to perform type
//! inference in an incremental fashion. This is possible because the core
//! of our technique, fusion, is incremental by essence."
//!
//! [`Incremental`] keeps a running fused schema. Appending a record is
//! `schema ⊔ infer(record)`; merging two independently maintained schemas
//! (e.g. one per partition of an updated dataset) is a single `Fuse` —
//! exactly the maintenance story the paper gives for partitioned data.

use crate::fuse::{fuse_with, FuseConfig};
use crate::fuse_inplace::fuse_into;
use crate::infer::infer_type;
use typefuse_json::Value;
use typefuse_types::Type;

/// A running fused schema over a stream of JSON values.
///
/// ```
/// use typefuse_infer::Incremental;
/// use typefuse_json::parse_value;
///
/// let mut inc = Incremental::new();
/// inc.absorb(&parse_value(r#"{"a": 1}"#).unwrap());
/// inc.absorb(&parse_value(r#"{"a": "x", "b": true}"#).unwrap());
/// assert_eq!(inc.schema().to_string(), "{a: Num + Str, b: Bool?}");
/// assert_eq!(inc.count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Incremental {
    schema: Type,
    count: u64,
    config: FuseConfig,
}

impl Default for Incremental {
    fn default() -> Self {
        Self::new()
    }
}

impl Incremental {
    /// An empty accumulator: the schema starts at `ε`, the identity of
    /// `Fuse`.
    pub fn new() -> Self {
        Self::with_config(FuseConfig::default())
    }

    /// An empty accumulator with an explicit fusion configuration.
    pub fn with_config(config: FuseConfig) -> Self {
        Incremental {
            schema: Type::Bottom,
            count: 0,
            config,
        }
    }

    /// Resume from a previously computed schema (e.g. loaded from disk)
    /// and record count, fusing further records under `config`.
    ///
    /// The config is part of the construction, not per-`absorb`: a warm
    /// accumulator resumed by a long-running service must keep honoring
    /// the same fusion options the original batch run used, or the
    /// incremental ≡ batch law breaks.
    pub fn resume(schema: Type, count: u64, config: FuseConfig) -> Self {
        Incremental {
            schema,
            count,
            config,
        }
    }

    /// The fusion configuration this accumulator absorbs under.
    pub fn config(&self) -> FuseConfig {
        self.config
    }

    /// Absorb one JSON value: infer its type and fuse it in.
    pub fn absorb(&mut self, value: &Value) {
        self.absorb_type(infer_type(value));
    }

    /// Absorb an already inferred type. Uses in-place fusion, so the
    /// running schema's untouched subtrees are never copied.
    pub fn absorb_type(&mut self, ty: Type) {
        fuse_into(self.config, &mut self.schema, &ty);
        self.count += 1;
    }

    /// Merge another accumulator (e.g. from a different partition). Thanks
    /// to associativity and commutativity of fusion, the result is the
    /// same as if all values had been absorbed by one accumulator, in any
    /// order.
    pub fn merge(&mut self, other: &Incremental) {
        self.schema = fuse_with(self.config, &self.schema, &other.schema);
        self.count += other.count;
    }

    /// The current fused schema. `ε` if nothing has been absorbed.
    pub fn schema(&self) -> &Type {
        &self.schema
    }

    /// Number of values absorbed (across merges).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Consume the accumulator, returning the schema.
    pub fn into_schema(self) -> Type {
        self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::json;

    #[test]
    fn empty_accumulator_is_bottom() {
        let inc = Incremental::new();
        assert_eq!(inc.schema(), &Type::Bottom);
        assert_eq!(inc.count(), 0);
    }

    #[test]
    fn absorb_matches_batch_fusion() {
        let values = [
            json!({"a": 1}),
            json!({"a": null, "b": [1, "x"]}),
            json!({"b": []}),
        ];
        let mut inc = Incremental::new();
        for v in &values {
            inc.absorb(v);
        }
        let batch = crate::fuse_all(&values.iter().map(crate::infer_type).collect::<Vec<_>>());
        assert_eq!(inc.schema(), &batch);
        assert_eq!(inc.count(), 3);
    }

    #[test]
    fn merge_equals_single_stream() {
        let left = [json!({"a": 1}), json!({"b": "x"})];
        let right = [json!({"a": true}), json!({"c": null})];

        let mut part1 = Incremental::new();
        left.iter().for_each(|v| part1.absorb(v));
        let mut part2 = Incremental::new();
        right.iter().for_each(|v| part2.absorb(v));

        let mut merged = part1.clone();
        merged.merge(&part2);

        let mut sequential = Incremental::new();
        left.iter().chain(&right).for_each(|v| sequential.absorb(v));

        assert_eq!(merged.schema(), sequential.schema());
        assert_eq!(merged.count(), 4);

        // Commutativity: merge in the other direction too.
        let mut merged_rev = part2.clone();
        merged_rev.merge(&part1);
        assert_eq!(merged_rev.schema(), sequential.schema());
    }

    #[test]
    fn resume_continues_from_snapshot() {
        let mut inc = Incremental::new();
        inc.absorb(&json!({"a": 1}));
        let snapshot = inc.schema().clone();

        let mut resumed = Incremental::resume(snapshot, inc.count(), inc.config());
        resumed.absorb(&json!({"a": "x"}));
        assert_eq!(resumed.schema().to_string(), "{a: Num + Str}");
        assert_eq!(resumed.count(), 2);
    }

    #[test]
    fn resume_keeps_the_given_config() {
        let config = FuseConfig::default();
        let resumed = Incremental::resume(Type::Bottom, 0, config);
        assert_eq!(resumed.config(), config);
    }

    #[test]
    fn update_only_changed_partition() {
        // The paper's maintenance scenario: re-infer only the updated
        // partition, then fuse with the stale schemas of the others.
        let stable = [json!({"id": 1, "tag": "x"}), json!({"id": 2, "tag": "y"})];
        let updated_old = [json!({"id": 3})];
        let updated_new = [json!({"id": 3}), json!({"id": 4, "extra": true})];

        let mut stable_acc = Incremental::new();
        stable.iter().for_each(|v| stable_acc.absorb(v));

        let mut full = Incremental::new();
        stable
            .iter()
            .chain(&updated_new)
            .for_each(|v| full.absorb(v));

        // Incremental path: reuse stable_acc, re-infer only the updated part.
        let mut updated_acc = Incremental::new();
        updated_new.iter().for_each(|v| updated_acc.absorb(v));
        let mut maintained = stable_acc.clone();
        maintained.merge(&updated_acc);

        assert_eq!(maintained.schema(), full.schema());
        // The old content of the updated partition never mattered.
        let _ = updated_old;
    }
}
