//! In-place fusion: the accumulator-friendly variant of [`crate::fuse`].
//!
//! The Reduce phase folds millions of record types into one accumulator.
//! The by-reference [`fuse`](crate::fuse) clones *both* inputs' subtrees
//! on every step — O(|accumulator|) allocation per record even when the
//! record adds nothing new. On key-explosive datasets (Wikidata's
//! ids-as-keys) the accumulator grows into tens of thousands of nodes and
//! that clone dominates the whole pipeline.
//!
//! [`fuse_into`] instead *consumes* the accumulator: subtrees that the
//! incoming type does not touch are moved, not copied, so absorbing a
//! record costs O(|record| + touched accumulator nodes). The result is
//! bit-identical to the by-reference fusion (property-tested), because
//! both implement the same Figure 6 specification.

use crate::fuse::{fuse_with, FuseConfig};
use typefuse_types::{ArrayType, Field, RecordType, Type};

/// Fuse `other` into `acc` in place: `*acc = Fuse(*acc, other)`, moving
/// unchanged subtrees of `acc` instead of cloning them.
pub fn fuse_into(cfg: FuseConfig, acc: &mut Type, other: &Type) {
    let current = std::mem::replace(acc, Type::Bottom);
    *acc = fuse_owned(cfg, current, other);
}

/// Owned-left variant of `Fuse`.
fn fuse_owned(cfg: FuseConfig, left: Type, right: &Type) -> Type {
    // Kind-indexed slots, seeded by moving the left addends in.
    let mut slots: [Option<Type>; 6] = Default::default();
    for addend in left.into_addends() {
        let k = addend.kind().expect("union addends are kinded") as usize;
        debug_assert!(slots[k].is_none(), "left operand is normal");
        slots[k] = Some(addend);
    }
    for addend in right.addends() {
        let k = addend.kind().expect("union addends are kinded") as usize;
        slots[k] = Some(match slots[k].take() {
            None => addend.clone(),
            Some(prev) => lfuse_owned(cfg, prev, addend),
        });
    }
    Type::union(slots.into_iter().flatten()).expect("one addend per kind by construction")
}

/// Owned-left `LFuse`: both sides have the same kind; `left` is consumed.
fn lfuse_owned(cfg: FuseConfig, left: Type, right: &Type) -> Type {
    debug_assert_eq!(left.kind(), right.kind());
    match (left, right) {
        (l @ (Type::Null | Type::Bool | Type::Num | Type::Str), _) => l,

        (Type::Record(r1), Type::Record(r2)) => lfuse_records_owned(cfg, r1, r2),

        // Array cases: the collapse of the *borrowed* side is cold (it
        // happens at most once per array position before everything is
        // starred), so it reuses the by-reference machinery.
        (Type::Star(b1), Type::Star(b2)) => Type::star(fuse_owned(cfg, *b1, b2)),
        (Type::Star(b1), Type::Array(a2)) => {
            Type::star(fuse_owned(cfg, *b1, &collapse_ref(cfg, a2)))
        }
        (Type::Array(a1), Type::Star(b2)) => {
            let collapsed = collapse_owned(cfg, a1);
            Type::star(fuse_owned(cfg, collapsed, b2))
        }
        (Type::Array(a1), Type::Array(a2)) => {
            let collapsed = collapse_owned(cfg, a1);
            Type::star(fuse_owned(cfg, collapsed, &collapse_ref(cfg, a2)))
        }

        (l, r) => unreachable!("lfuse_owned on mismatched kinds: {l} vs {r}"),
    }
}

fn collapse_owned(cfg: FuseConfig, at: ArrayType) -> Type {
    // Consume the element types one by one; each element is moved into
    // the accumulator via the owned-right trick (swap sides — fusion is
    // commutative, Theorem 5.4, so Fuse(elem, acc) = Fuse(acc, elem)).
    let mut acc = Type::Bottom;
    for elem in at.into_elems() {
        acc = fuse_owned(cfg, elem, &acc);
    }
    acc
}

fn collapse_ref(cfg: FuseConfig, at: &ArrayType) -> Type {
    at.elems()
        .iter()
        .fold(Type::Bottom, |acc, t| fuse_with(cfg, &acc, t))
}

/// Record merge-join where the left fields are moved.
fn lfuse_records_owned(cfg: FuseConfig, r1: RecordType, r2: &RecordType) -> Type {
    let f2s = r2.fields();
    let mut out: Vec<Field> = Vec::with_capacity(r1.len().max(f2s.len()));
    let mut left_iter = r1.into_fields().into_iter().peekable();
    let mut j = 0;
    loop {
        match (left_iter.peek(), f2s.get(j)) {
            (Some(f1), Some(f2)) => match f1.name.cmp(&f2.name) {
                std::cmp::Ordering::Equal => {
                    let f1 = left_iter.next().expect("peeked");
                    out.push(Field {
                        name: f1.name,
                        ty: fuse_owned(cfg, f1.ty, &f2.ty),
                        optional: f1.optional || f2.optional,
                    });
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    let mut f1 = left_iter.next().expect("peeked");
                    f1.optional = true;
                    out.push(f1);
                }
                std::cmp::Ordering::Greater => {
                    out.push(Field {
                        name: f2.name.clone(),
                        ty: f2.ty.clone(),
                        optional: true,
                    });
                    j += 1;
                }
            },
            (Some(_), None) => {
                let mut f1 = left_iter.next().expect("peeked");
                f1.optional = true;
                out.push(f1);
            }
            (None, Some(f2)) => {
                out.push(Field {
                    name: f2.name.clone(),
                    ty: f2.ty.clone(),
                    optional: true,
                });
                j += 1;
            }
            (None, None) => break,
        }
    }
    Type::Record(RecordType::from_sorted(out).expect("merge-join keeps order"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fuse, fuse_all, infer_type};
    use typefuse_json::json;
    use typefuse_types::parse_type;

    fn check_pair(a: &str, b: &str) {
        let (ta, tb) = (parse_type(a).unwrap(), parse_type(b).unwrap());
        let by_ref = fuse(&ta, &tb);
        let mut in_place = ta.clone();
        fuse_into(FuseConfig::default(), &mut in_place, &tb);
        assert_eq!(in_place, by_ref, "fuse_into({a}, {b})");
    }

    #[test]
    fn agrees_with_by_reference_fusion() {
        for (a, b) in [
            ("Num", "Num"),
            ("Num", "Str"),
            ("{A: Str, B: Num}", "{B: Bool, C: Str}"),
            ("{A: Str?, B: Bool + Num, C: Str?}", "{A: Null, B: Num}"),
            ("[Num, Bool]", "[Str*]"),
            ("[]", "[]"),
            ("ε", "{a: Num}"),
            ("{a: Num}", "ε"),
            ("Num + {a: [Str, Str]}", "{a: []} + Bool"),
            (
                "[(Str + {E: Str, F: Num})*]",
                "[Str, Str, {E: Str, F: Num}]",
            ),
        ] {
            check_pair(a, b);
        }
    }

    #[test]
    fn accumulating_a_stream_matches_batch() {
        let values = [
            json!({"a": 1, "b": "x"}),
            json!({"a": null, "c": [1, {"d": true}]}),
            json!({"b": "y", "c": []}),
            json!(42),
        ];
        let mut acc = Type::Bottom;
        for v in &values {
            fuse_into(FuseConfig::default(), &mut acc, &infer_type(v));
        }
        let batch = fuse_all(&values.iter().map(infer_type).collect::<Vec<_>>());
        assert_eq!(acc, batch);
    }

    #[test]
    fn output_is_normal() {
        let mut acc = parse_type("{a: [Num, Num], b: Str}").unwrap();
        fuse_into(
            FuseConfig::default(),
            &mut acc,
            &parse_type("{a: [Bool*], c: {d: Null}}").unwrap(),
        );
        acc.check_invariants().unwrap();
        assert_eq!(
            acc.to_string(),
            "{a: [(Bool + Num)*], b: Str?, c: {d: Null}?}"
        );
    }
}
