//! # typefuse-query
//!
//! A small query language over JSON collections, **statically checked
//! against an inferred schema**.
//!
//! The paper motivates complete inferred schemas with exactly this use
//! case (Sections 1 and 3): "the correctness of complex queries and
//! programs cannot be statically checked" without a schema, and "our
//! inferred schemas can be used to make type checking of Pig Latin
//! scripts much stronger". This crate is that consumer: a pipeline of
//! `filter` / `project` / `flatten` / `limit` operators whose paths and
//! kind expectations are verified against the schema *before* touching a
//! single record.
//!
//! The payoff is the soundness property tested in `tests/soundness.rs`:
//! **a pipeline that type-checks against the fused schema of a dataset
//! never encounters a structural error when evaluated on that dataset**,
//! and its output conforms to the predicted output schema.
//!
//! ```
//! use typefuse_infer::{fuse_all, infer_type};
//! use typefuse_json::parse_value;
//! use typefuse_query::Pipeline;
//!
//! let records: Vec<_> = [
//!     r#"{"user": {"name": "ada"}, "tags": ["x", "y"]}"#,
//!     r#"{"user": {"name": "bob"}, "tags": []}"#,
//! ]
//! .iter()
//! .map(|l| parse_value(l).unwrap())
//! .collect();
//! let schema = fuse_all(&records.iter().map(infer_type).collect::<Vec<_>>());
//!
//! // After `flatten $.tags`, the `tags` field holds one tag per row.
//! let pipeline = Pipeline::parse(
//!     "flatten $.tags\nproject $.user.name, $.tags",
//! ).unwrap();
//! let out_schema = pipeline.check(&schema).unwrap();
//! let out = pipeline.eval(&records).unwrap();
//! assert_eq!(out.len(), 2); // two tag rows from the first record
//! assert!(out.iter().all(|v| out_schema.admits(v)));
//!
//! // A typo'd path is rejected before any data is touched:
//! let typo = Pipeline::parse("project $.user.nmae").unwrap();
//! assert!(typo.check(&schema).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod check;
mod eval;
mod parse;

pub use ast::{Comparison, Op, Path, Pipeline, Predicate, Step};
pub use check::CheckError;
pub use eval::EvalError;
pub use parse::ParseError;
