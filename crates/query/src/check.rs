//! The static type checker: verify a pipeline against a schema and
//! predict the output schema.
//!
//! This is where a *complete* inferred schema pays off (Section 1 of the
//! paper): a typo'd path, a comparison against the wrong scalar kind, or
//! a `flatten` of a non-array is rejected before any data is read —
//! exactly the "stronger type checking of Pig Latin scripts" use case
//! the paper cites for its schemas.

use crate::ast::{Comparison, Literal, Op, Path, Pipeline, Predicate, Step};
use std::fmt;
use typefuse_infer::fuse_all;
use typefuse_types::{Field, RecordType, Type, TypeKind};

/// A static error found by [`Pipeline::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A path names a route the schema proves cannot exist.
    UnknownPath {
        /// The full path as written in the query.
        path: String,
        /// The longest resolvable prefix.
        resolved_prefix: String,
    },
    /// A comparison can never succeed: the schema admits no value of the
    /// literal's kind at the path.
    KindMismatch {
        /// The compared path.
        path: String,
        /// The kind required by the literal/operator.
        expected: TypeKind,
        /// The kinds the schema allows at the path.
        found: Vec<TypeKind>,
    },
    /// `flatten` on a path whose schema has no array component.
    FlattenNonArray {
        /// The flattened path.
        path: String,
        /// The kinds the schema allows at the path.
        found: Vec<TypeKind>,
    },
    /// `flatten` paths must not traverse arrays (`[]` steps).
    FlattenThroughArray {
        /// The offending path.
        path: String,
    },
    /// `project` with no paths would produce empty rows.
    EmptyProject,
    /// `<`/`>` against a literal kind that has no ordering.
    UnorderedComparison {
        /// The comparison literal's kind.
        kind: TypeKind,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UnknownPath {
                path,
                resolved_prefix,
            } => write!(
                f,
                "path {path} does not exist in the schema (resolved up to {resolved_prefix})"
            ),
            CheckError::KindMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{path} can never be {expected}: the schema allows only {found:?}"
            ),
            CheckError::FlattenNonArray { path, found } => {
                write!(f, "cannot flatten {path}: the schema allows only {found:?}")
            }
            CheckError::FlattenThroughArray { path } => {
                write!(f, "flatten path {path} must not contain [] steps")
            }
            CheckError::EmptyProject => write!(f, "project needs at least one path"),
            CheckError::UnorderedComparison { kind } => {
                write!(f, "</> cannot compare values of kind {kind}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

impl Pipeline {
    /// Statically check this pipeline against `schema`, returning the
    /// output schema it will produce.
    pub fn check(&self, schema: &Type) -> Result<Type, CheckError> {
        let mut current = schema.clone();
        for op in &self.ops {
            current = check_op(op, &current)?;
        }
        Ok(current)
    }
}

fn check_op(op: &Op, schema: &Type) -> Result<Type, CheckError> {
    match op {
        Op::Limit(_) | Op::Distinct => Ok(schema.clone()),
        Op::Count => Ok(Type::Record(
            RecordType::new(vec![Field::required("count", Type::Num)]).expect("single field"),
        )),
        Op::Filter(pred) => {
            check_pred(pred, schema)?;
            // Sound approximation: filtering never widens the value set.
            Ok(schema.clone())
        }
        Op::Project(paths) => {
            if paths.is_empty() {
                return Err(CheckError::EmptyProject);
            }
            for p in paths {
                resolve(schema, p)?;
            }
            Ok(project_schema(schema, paths))
        }
        Op::Flatten(path) => {
            if path.steps().iter().any(|s| matches!(s, Step::Item)) {
                return Err(CheckError::FlattenThroughArray {
                    path: path.to_string(),
                });
            }
            let at = resolve(schema, path)?;
            let elem = match element_view(&at) {
                Some(elem) => elem,
                None => {
                    return Err(CheckError::FlattenNonArray {
                        path: path.to_string(),
                        found: kinds(&at),
                    })
                }
            };
            Ok(narrow_along_path(schema, path.steps(), &elem))
        }
    }
}

fn check_pred(pred: &Predicate, schema: &Type) -> Result<(), CheckError> {
    match pred {
        Predicate::Exists(path) => resolve(schema, path).map(|_| ()),
        Predicate::Compare(path, cmp, literal) => {
            let at = resolve(schema, path)?;
            let expected = literal_kind(literal);
            if matches!(cmp, Comparison::Lt | Comparison::Gt)
                && !matches!(expected, TypeKind::Num | TypeKind::Str)
            {
                return Err(CheckError::UnorderedComparison { kind: expected });
            }
            // `!=` is satisfiable even when the kind never occurs; every
            // other comparison needs the kind to be possible.
            if !matches!(cmp, Comparison::Ne) && !kinds(&at).contains(&expected) {
                return Err(CheckError::KindMismatch {
                    path: path.to_string(),
                    expected,
                    found: kinds(&at),
                });
            }
            Ok(())
        }
        Predicate::Not(inner) => check_pred(inner, schema),
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            check_pred(a, schema)?;
            check_pred(b, schema)
        }
    }
}

fn kinds(t: &Type) -> Vec<TypeKind> {
    t.addends().iter().filter_map(Type::kind).collect()
}

pub(crate) fn literal_kind(l: &Literal) -> TypeKind {
    match l {
        Literal::Number(_) => TypeKind::Num,
        Literal::String(_) => TypeKind::Str,
        Literal::Bool(_) => TypeKind::Bool,
        Literal::Null => TypeKind::Null,
    }
}

/// The uniform element type of the array component of `t`, if any:
/// starred arrays yield their body, positional arrays the fusion of
/// their element types (`ε` for the empty array type).
pub(crate) fn element_view(t: &Type) -> Option<Type> {
    t.addends().iter().find_map(|a| match a {
        Type::Star(body) => Some((**body).clone()),
        Type::Array(at) => Some(fuse_all(at.elems())),
        _ => None,
    })
}

/// Navigate the schema along `path`, returning the type at its end.
pub(crate) fn resolve(schema: &Type, path: &Path) -> Result<Type, CheckError> {
    let mut current = schema.clone();
    for (i, step) in path.steps().iter().enumerate() {
        let next = match step {
            Step::Field(name) => current.addends().iter().find_map(|a| match a {
                Type::Record(rt) => rt.field(name).map(|f| f.ty.clone()),
                _ => None,
            }),
            Step::Item => element_view(&current).filter(|e| !matches!(e, Type::Bottom)),
        };
        current = next.ok_or_else(|| CheckError::UnknownPath {
            path: path.to_string(),
            resolved_prefix: Path::new(path.steps()[..i].to_vec()).to_string(),
        })?;
    }
    Ok(current)
}

/// Keep only the parts of the schema lying on one of the requested
/// routes. Fields named exactly by a path keep their whole type.
pub(crate) fn project_schema(schema: &Type, paths: &[Path]) -> Type {
    project_rel(schema, &paths.iter().map(|p| p.steps()).collect::<Vec<_>>())
}

fn project_rel(schema: &Type, routes: &[&[Step]]) -> Type {
    // A route that is exhausted means "keep this whole subtree".
    if routes.iter().any(|r| r.is_empty()) {
        return schema.clone();
    }
    let addends = schema.addends().iter().map(|a| match a {
        Type::Record(rt) => {
            let mut fields = Vec::new();
            for f in rt.fields() {
                let sub: Vec<&[Step]> = routes
                    .iter()
                    .filter_map(|r| match r.first() {
                        Some(Step::Field(name)) if *name == f.name => Some(&r[1..]),
                        _ => None,
                    })
                    .collect();
                if !sub.is_empty() {
                    fields.push(Field {
                        name: f.name.clone(),
                        ty: project_rel(&f.ty, &sub),
                        optional: f.optional,
                    });
                }
            }
            Type::Record(RecordType::new(fields).expect("subset of unique keys"))
        }
        Type::Star(_) | Type::Array(_) => {
            let sub: Vec<&[Step]> = routes
                .iter()
                .filter_map(|r| match r.first() {
                    Some(Step::Item) => Some(&r[1..]),
                    _ => None,
                })
                .collect();
            if sub.is_empty() {
                // The array itself is not on any route: it can only appear
                // here because a sibling addend is; keep it as-is.
                a.clone()
            } else {
                match a {
                    Type::Star(body) => Type::star(project_rel(body, &sub)),
                    Type::Array(at) => Type::Array(typefuse_types::ArrayType::new(
                        at.elems().iter().map(|e| project_rel(e, &sub)).collect(),
                    )),
                    _ => unreachable!(),
                }
            }
        }
        scalar => scalar.clone(),
    });
    Type::union(addends.collect::<Vec<_>>()).expect("kinds preserved")
}

/// Rebuild the schema for rows that survived `flatten path`: every level
/// along the path keeps only its record addend, the traversed fields
/// become mandatory, and the final field's type becomes `elem`.
fn narrow_along_path(schema: &Type, steps: &[Step], elem: &Type) -> Type {
    match steps {
        [] => elem.clone(),
        [Step::Field(name), rest @ ..] => {
            let rt = schema
                .addends()
                .iter()
                .find_map(|a| match a {
                    Type::Record(rt) => Some(rt),
                    _ => None,
                })
                .expect("checked by resolve");
            let fields = rt
                .fields()
                .iter()
                .map(|f| {
                    if f.name == *name {
                        Field {
                            name: f.name.clone(),
                            ty: narrow_along_path(&f.ty, rest, elem),
                            optional: false, // survivors always have it
                        }
                    } else {
                        f.clone()
                    }
                })
                .collect();
            Type::Record(RecordType::new(fields).expect("same keys"))
        }
        [Step::Item, ..] => unreachable!("flatten paths contain no [] steps"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_types::parse_type;

    fn schema() -> Type {
        parse_type(
            "{id: Num, name: Str?, tags: [Str*]?, user: {login: Str, site_admin: Bool}, \
             mixed: Null + Num + Str, ks: [{v: Str, rank: Num + Str}*]}",
        )
        .unwrap()
    }

    fn check(text: &str) -> Result<Type, CheckError> {
        Pipeline::parse(text).unwrap().check(&schema())
    }

    #[test]
    fn resolve_navigates_records_arrays_unions() {
        let s = schema();
        let t = resolve(&s, &Path::root().field("user").field("login")).unwrap();
        assert_eq!(t, Type::Str);
        let t = resolve(&s, &Path::root().field("ks").item().field("rank")).unwrap();
        assert_eq!(t.to_string(), "Num + Str");
    }

    #[test]
    fn unknown_paths_are_static_errors() {
        let err = check("project $.nope").unwrap_err();
        assert!(matches!(err, CheckError::UnknownPath { .. }));
        let err = check("filter exists $.user.nope").unwrap_err();
        match err {
            CheckError::UnknownPath {
                resolved_prefix, ..
            } => {
                assert_eq!(resolved_prefix, "$.user");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Items through a non-array.
        assert!(matches!(
            check("project $.id[]"),
            Err(CheckError::UnknownPath { .. })
        ));
    }

    #[test]
    fn kind_mismatches_are_static_errors() {
        let err = check("filter $.id == \"x\"").unwrap_err();
        assert!(matches!(
            err,
            CheckError::KindMismatch {
                expected: TypeKind::Str,
                ..
            }
        ));
        // Union paths accept any member kind.
        assert!(check("filter $.mixed == 3").is_ok());
        assert!(check("filter $.mixed == \"s\"").is_ok());
        assert!(check("filter $.mixed == null").is_ok());
        assert!(matches!(
            check("filter $.mixed == true"),
            Err(CheckError::KindMismatch { .. })
        ));
        // != is satisfiable regardless of kind.
        assert!(check("filter $.id != \"x\"").is_ok());
    }

    #[test]
    fn ordering_needs_ordered_kinds() {
        assert!(check("filter $.id > 3").is_ok());
        assert!(check("filter $.name < \"m\"").is_ok());
        assert!(matches!(
            check("filter $.mixed > null"),
            Err(CheckError::UnorderedComparison {
                kind: TypeKind::Null
            })
        ));
    }

    #[test]
    fn project_output_schema() {
        let out = check("project $.id, $.user.login").unwrap();
        assert_eq!(out.to_string(), "{id: Num, user: {login: Str}}");
        // Projecting a whole subtree keeps it intact.
        let out = check("project $.user").unwrap();
        assert_eq!(out.to_string(), "{user: {login: Str, site_admin: Bool}}");
        // Optionality survives projection.
        let out = check("project $.name").unwrap();
        assert_eq!(out.to_string(), "{name: Str?}");
        // Through arrays.
        let out = check("project $.ks[].v").unwrap();
        assert_eq!(out.to_string(), "{ks: [{v: Str}*]}");
    }

    #[test]
    fn flatten_output_schema() {
        let out = check("flatten $.tags").unwrap();
        match &out {
            Type::Record(rt) => {
                let f = rt.field("tags").unwrap();
                assert!(!f.optional, "survivors always have tags");
                assert_eq!(f.ty, Type::Str);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn flatten_errors() {
        assert!(matches!(
            check("flatten $.id"),
            Err(CheckError::FlattenNonArray { .. })
        ));
        assert!(matches!(
            check("flatten $.ks[].v"),
            Err(CheckError::FlattenThroughArray { .. })
        ));
    }

    #[test]
    fn empty_project_rejected() {
        let p = Pipeline::new().then(Op::Project(vec![]));
        assert_eq!(p.check(&schema()), Err(CheckError::EmptyProject));
    }

    #[test]
    fn pipelines_compose() {
        let out = check("flatten $.ks\nproject $.ks.v\nlimit 3").unwrap();
        assert_eq!(out.to_string(), "{ks: {v: Str}}");
        // After flatten, $.ks is the element record: [] no longer resolves.
        assert!(matches!(
            check("flatten $.ks\nproject $.ks[].v"),
            Err(CheckError::UnknownPath { .. })
        ));
    }
}

#[cfg(test)]
mod distinct_count_check_tests {
    use super::*;
    use typefuse_types::parse_type;

    #[test]
    fn count_output_schema_is_fixed() {
        let p = Pipeline::parse("count").unwrap();
        let out = p.check(&parse_type("{a: Num}").unwrap()).unwrap();
        assert_eq!(out.to_string(), "{count: Num}");
        // …and composes: paths after count resolve against it.
        let p = Pipeline::parse("count\nproject $.count").unwrap();
        assert!(p.check(&parse_type("{a: Num}").unwrap()).is_ok());
        let p = Pipeline::parse("count\nproject $.a").unwrap();
        assert!(p.check(&parse_type("{a: Num}").unwrap()).is_err());
    }

    #[test]
    fn distinct_preserves_schema() {
        let schema = parse_type("{a: Num, b: Str?}").unwrap();
        let p = Pipeline::parse("distinct").unwrap();
        assert_eq!(p.check(&schema).unwrap(), schema);
    }
}
