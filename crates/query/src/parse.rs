//! Text syntax for pipelines: one operator per line.
//!
//! ```text
//! filter exists $.byline and not $.word_count == "0"
//! flatten $.keywords
//! project $.headline.main, $.keywords[].value
//! limit 100
//! ```
//!
//! Grammar:
//!
//! ```text
//! pipeline := line*                       one op per non-empty line,
//!                                         `#` starts a comment
//! line     := "filter" pred
//!           | "project" path ("," path)*
//!           | "flatten" path
//!           | "limit" integer
//!           | "distinct" | "count"
//! pred     := orterm ("or" orterm)*
//! orterm   := term ("and" term)*
//! term     := "not" term | "(" pred ")" | "exists" path
//!           | path cmp literal
//! cmp      := "==" | "!=" | "<" | ">"
//! literal  := JSON scalar (number, string, true, false, null)
//! path     := "$" ( "." ident | "[]" )*
//! ```

use crate::ast::{Comparison, Literal, Op, Path, Pipeline, Predicate, Step};
use std::fmt;

/// A parse failure with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Pipeline {
    /// Parse a pipeline from its text form.
    pub fn parse(text: &str) -> Result<Pipeline, ParseError> {
        let mut ops = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = match raw.find('#') {
                Some(cut) => &raw[..cut],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let mut cursor = Cursor {
                text: line,
                pos: 0,
                line: line_no,
            };
            let op = cursor.parse_op()?;
            cursor.skip_ws();
            if !cursor.at_end() {
                return Err(cursor.err("trailing input after operator"));
            }
            ops.push(op);
        }
        Ok(Pipeline { ops })
    }
}

struct Cursor<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.rest().is_empty()
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.text.len() - trimmed.len();
    }

    fn eat_symbol(&mut self, symbol: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(symbol) {
            self.pos += symbol.len();
            true
        } else {
            false
        }
    }

    /// Consume `word` only if followed by a non-identifier character.
    fn eat_word(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(word) {
            let after = self.rest()[word.len()..].chars().next();
            if !matches!(after, Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                self.pos += word.len();
                return true;
            }
        }
        false
    }

    fn parse_op(&mut self) -> Result<Op, ParseError> {
        if self.eat_word("filter") {
            return Ok(Op::Filter(self.parse_pred()?));
        }
        if self.eat_word("project") {
            let mut paths = vec![self.parse_path()?];
            while self.eat_symbol(",") {
                paths.push(self.parse_path()?);
            }
            return Ok(Op::Project(paths));
        }
        if self.eat_word("flatten") {
            return Ok(Op::Flatten(self.parse_path()?));
        }
        if self.eat_word("distinct") {
            return Ok(Op::Distinct);
        }
        if self.eat_word("count") {
            return Ok(Op::Count);
        }
        if self.eat_word("limit") {
            self.skip_ws();
            let digits: String = self
                .rest()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            if digits.is_empty() {
                return Err(self.err("limit needs a number"));
            }
            self.pos += digits.len();
            let n: usize = digits.parse().map_err(|_| self.err("limit out of range"))?;
            return Ok(Op::Limit(n));
        }
        Err(self.err("expected filter, project, flatten, distinct, count or limit"))
    }

    fn parse_pred(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_word("or") {
            let right = self.parse_and()?;
            left = Predicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.parse_term()?;
        while self.eat_word("and") {
            let right = self.parse_term()?;
            left = Predicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_term(&mut self) -> Result<Predicate, ParseError> {
        if self.eat_word("not") {
            return Ok(Predicate::Not(Box::new(self.parse_term()?)));
        }
        if self.eat_symbol("(") {
            let inner = self.parse_pred()?;
            if !self.eat_symbol(")") {
                return Err(self.err("expected `)`"));
            }
            return Ok(inner);
        }
        if self.eat_word("exists") {
            return Ok(Predicate::Exists(self.parse_path()?));
        }
        let path = self.parse_path()?;
        let cmp = if self.eat_symbol("==") {
            Comparison::Eq
        } else if self.eat_symbol("!=") {
            Comparison::Ne
        } else if self.eat_symbol("<") {
            Comparison::Lt
        } else if self.eat_symbol(">") {
            Comparison::Gt
        } else {
            return Err(self.err("expected a comparison operator"));
        };
        let literal = self.parse_literal()?;
        Ok(Predicate::Compare(path, cmp, literal))
    }

    fn parse_path(&mut self) -> Result<Path, ParseError> {
        self.skip_ws();
        if !self.eat_symbol("$") {
            return Err(self.err("expected a path starting with `$`"));
        }
        let mut steps = Vec::new();
        loop {
            if self.rest().starts_with("[]") {
                self.pos += 2;
                steps.push(Step::Item);
            } else if self.rest().starts_with('.') {
                self.pos += 1;
                let name: String = self
                    .rest()
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '-')
                    .collect();
                if name.is_empty() {
                    return Err(self.err("expected a field name after `.`"));
                }
                self.pos += name.len();
                steps.push(Step::Field(name));
            } else {
                break;
            }
        }
        Ok(Path::new(steps))
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        self.skip_ws();
        // Delegate scalars to the JSON parser for full escape and number
        // grammar support.
        let rest = self.rest();
        let mut jp = typefuse_json::Parser::new(rest.as_bytes());
        match jp.parse_one() {
            Ok(typefuse_json::Value::Number(n)) => {
                self.pos += jp.position().offset;
                Ok(Literal::Number(n))
            }
            Ok(typefuse_json::Value::String(s)) => {
                self.pos += jp.position().offset;
                Ok(Literal::String(s))
            }
            Ok(typefuse_json::Value::Bool(b)) => {
                self.pos += jp.position().offset;
                Ok(Literal::Bool(b))
            }
            Ok(typefuse_json::Value::Null) => {
                self.pos += jp.position().offset;
                Ok(Literal::Null)
            }
            _ => Err(self.err("expected a scalar literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Pipeline {
        Pipeline::parse(text).unwrap()
    }

    fn parse_err(text: &str) -> ParseError {
        Pipeline::parse(text).unwrap_err()
    }

    #[test]
    fn empty_and_comments() {
        assert_eq!(parse("").ops.len(), 0);
        assert_eq!(parse("\n# a comment\n  \n").ops.len(), 0);
        assert_eq!(parse("limit 5 # keep few").ops, vec![Op::Limit(5)]);
    }

    #[test]
    fn project_and_flatten() {
        let p = parse("project $.a, $.b[].c\nflatten $.b");
        assert_eq!(
            p.ops,
            vec![
                Op::Project(vec![
                    Path::root().field("a"),
                    Path::root().field("b").item().field("c"),
                ]),
                Op::Flatten(Path::root().field("b")),
            ]
        );
    }

    #[test]
    fn filter_predicates() {
        let p = parse(r#"filter exists $.a and not ($.n > 3 or $.s == "x")"#);
        match &p.ops[0] {
            Op::Filter(Predicate::And(left, right)) => {
                assert!(matches!(**left, Predicate::Exists(_)));
                assert!(matches!(**right, Predicate::Not(_)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn literals() {
        parse(r#"filter $.a == "quoted \"str\"""#);
        parse("filter $.a == -1.5e3");
        parse("filter $.a != null");
        parse("filter $.a == true");
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let p = parse("filter exists $.a or exists $.b and exists $.c");
        match &p.ops[0] {
            Op::Filter(Predicate::Or(_, right)) => {
                assert!(matches!(**right, Predicate::And(_, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_err("limit 5\nfrobnicate $.x");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expected filter"));

        assert!(parse_err("project a").message.contains("path"));
        assert!(parse_err("filter $.a ==").message.contains("literal"));
        assert!(parse_err("limit").message.contains("number"));
        assert!(parse_err("limit 3 extra").message.contains("trailing"));
        assert!(parse_err("filter ($.a == 1").message.contains(")"));
        assert!(parse_err("project $.").message.contains("field name"));
    }

    #[test]
    fn root_path_is_allowed() {
        let p = parse("flatten $");
        assert_eq!(p.ops, vec![Op::Flatten(Path::root())]);
    }

    #[test]
    fn display_parse_round_trip() {
        let text = "filter (exists $.a) and ($.n > 3)\nproject $.a, $.n\nlimit 7";
        let p = parse(text);
        let reparsed = parse(&p.to_string());
        assert_eq!(p, reparsed);
    }
}
