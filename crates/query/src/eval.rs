//! The pipeline evaluator over concrete JSON rows.
//!
//! Evaluation is total on *any* input (structural mismatches drop rows or
//! evaluate predicates to false), but the interesting guarantee is the
//! checked one: on data admitted by the schema a pipeline was checked
//! against, evaluation follows exactly the routes the checker predicted —
//! see `tests/soundness.rs`.

use crate::ast::{Comparison, Literal, Op, Path, Pipeline, Predicate, Step};
use std::fmt;
use typefuse_json::{Map, Number, Value};

/// A runtime evaluation failure.
///
/// The current operator set is total, so this is reserved for future
/// operators (e.g. arithmetic); it also keeps the public API stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {}

impl fmt::Display for EvalError {
    fn fmt(&self, _f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {}
    }
}

impl std::error::Error for EvalError {}

impl Pipeline {
    /// Run the pipeline over `rows`, producing the output rows.
    pub fn eval(&self, rows: &[Value]) -> Result<Vec<Value>, EvalError> {
        let mut current: Vec<Value> = rows.to_vec();
        for op in &self.ops {
            current = eval_op(op, current)?;
        }
        Ok(current)
    }
}

fn eval_op(op: &Op, rows: Vec<Value>) -> Result<Vec<Value>, EvalError> {
    Ok(match op {
        Op::Limit(n) => {
            let mut rows = rows;
            rows.truncate(*n);
            rows
        }
        Op::Filter(pred) => rows.into_iter().filter(|v| eval_pred(pred, v)).collect(),
        Op::Distinct => {
            let mut seen = std::collections::HashSet::new();
            rows.into_iter()
                .filter(|row| seen.insert(row.clone()))
                .collect()
        }
        Op::Count => {
            let mut m = Map::new();
            m.insert_unchecked("count", Value::Number(Number::Int(rows.len() as i64)));
            vec![Value::Object(m)]
        }
        Op::Project(paths) => rows
            .iter()
            .map(|v| project_value(v, &paths.iter().map(Path::steps).collect::<Vec<_>>()))
            .collect(),
        Op::Flatten(path) => {
            let mut out = Vec::new();
            for row in rows {
                flatten_row(&row, path.steps(), &mut out);
            }
            out
        }
    })
}

/// Resolve every value reachable along `path` (array steps fan out).
pub(crate) fn resolve_values<'v>(v: &'v Value, steps: &[Step]) -> Vec<&'v Value> {
    let mut current = vec![v];
    for step in steps {
        let mut next = Vec::new();
        for value in current {
            match step {
                Step::Field(name) => {
                    if let Some(child) = value.get(name) {
                        next.push(child);
                    }
                }
                Step::Item => {
                    if let Some(elems) = value.as_array() {
                        next.extend(elems.iter());
                    }
                }
            }
        }
        current = next;
    }
    current
}

fn eval_pred(pred: &Predicate, row: &Value) -> bool {
    match pred {
        Predicate::Exists(path) => !resolve_values(row, path.steps()).is_empty(),
        Predicate::Compare(path, cmp, literal) => resolve_values(row, path.steps())
            .iter()
            .any(|v| compare(v, *cmp, literal)),
        Predicate::Not(inner) => !eval_pred(inner, row),
        Predicate::And(a, b) => eval_pred(a, row) && eval_pred(b, row),
        Predicate::Or(a, b) => eval_pred(a, row) || eval_pred(b, row),
    }
}

fn compare(v: &Value, cmp: Comparison, literal: &Literal) -> bool {
    use std::cmp::Ordering;
    let ordering: Option<Ordering> = match (v, literal) {
        (Value::Number(a), Literal::Number(b)) => Some(a.cmp(b)),
        (Value::String(a), Literal::String(b)) => Some(a.as_str().cmp(b.as_str())),
        (Value::Bool(a), Literal::Bool(b)) => Some(a.cmp(b)),
        (Value::Null, Literal::Null) => Some(Ordering::Equal),
        _ => None, // kind mismatch
    };
    match (cmp, ordering) {
        (Comparison::Eq, Some(Ordering::Equal)) => true,
        (Comparison::Eq, _) => false,
        // `!=` is true on kind mismatch too: the value is not that literal.
        (Comparison::Ne, Some(Ordering::Equal)) => false,
        (Comparison::Ne, _) => true,
        (Comparison::Lt, Some(Ordering::Less)) => true,
        (Comparison::Gt, Some(Ordering::Greater)) => true,
        _ => false,
    }
}

/// Keep only the parts of the row on one of the requested routes.
fn project_value(v: &Value, routes: &[&[Step]]) -> Value {
    if routes.iter().any(|r| r.is_empty()) {
        return v.clone();
    }
    match v {
        Value::Object(map) => {
            let mut out = Map::new();
            for (key, child) in map.iter() {
                let sub: Vec<&[Step]> = routes
                    .iter()
                    .filter_map(|r| match r.first() {
                        Some(Step::Field(name)) if name == key => Some(&r[1..]),
                        _ => None,
                    })
                    .collect();
                if !sub.is_empty() {
                    out.insert_unchecked(key, project_value(child, &sub));
                }
            }
            Value::Object(out)
        }
        Value::Array(elems) => {
            let sub: Vec<&[Step]> = routes
                .iter()
                .filter_map(|r| match r.first() {
                    Some(Step::Item) => Some(&r[1..]),
                    _ => None,
                })
                .collect();
            if sub.is_empty() {
                v.clone()
            } else {
                Value::Array(elems.iter().map(|e| project_value(e, &sub)).collect())
            }
        }
        scalar => scalar.clone(),
    }
}

/// Emit one row per element of the array at `steps` (all-Field path).
/// Rows missing the path, or holding a non-array there, are dropped.
fn flatten_row(row: &Value, steps: &[Step], out: &mut Vec<Value>) {
    // Navigate to the parent of the final field.
    let Some((Step::Field(last), parents)) = steps.split_last() else {
        // flatten $ — the row itself must be an array.
        if let Some(elems) = row.as_array() {
            out.extend(elems.iter().cloned());
        }
        return;
    };
    let mut current = row;
    for step in parents {
        let Step::Field(name) = step else { return };
        match current.get(name) {
            Some(child) => current = child,
            None => return,
        }
    }
    let Some(Value::Array(elems)) = current.get(last) else {
        return;
    };
    for elem in elems {
        out.push(replace_at(row, steps, elem.clone()));
    }
}

/// Clone `row` with the value at the all-Field path replaced.
fn replace_at(row: &Value, steps: &[Step], replacement: Value) -> Value {
    match steps.split_first() {
        None => replacement,
        Some((Step::Field(name), rest)) => match row {
            Value::Object(map) => {
                let mut out = Map::with_capacity(map.len());
                for (key, child) in map.iter() {
                    if key == name.as_str() {
                        out.insert_unchecked(key, replace_at(child, rest, replacement.clone()));
                    } else {
                        out.insert_unchecked(key, child.clone());
                    }
                }
                Value::Object(out)
            }
            other => other.clone(),
        },
        Some((Step::Item, _)) => unreachable!("flatten paths contain no [] steps"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_json::json;

    fn rows() -> Vec<Value> {
        vec![
            json!({"id": 1, "name": "a", "tags": ["x", "y"], "n": 5}),
            json!({"id": 2, "tags": [], "n": 10}),
            json!({"id": 3, "name": "c", "n": 7}),
        ]
    }

    fn run(text: &str) -> Vec<Value> {
        Pipeline::parse(text).unwrap().eval(&rows()).unwrap()
    }

    #[test]
    fn filter_exists() {
        let out = run("filter exists $.name");
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.get("name").is_some()));
    }

    #[test]
    fn filter_comparisons() {
        assert_eq!(run("filter $.n > 5").len(), 2);
        assert_eq!(run("filter $.n < 6").len(), 1);
        assert_eq!(run("filter $.id == 2").len(), 1);
        assert_eq!(run("filter $.name == \"a\"").len(), 1);
        // Comparisons are existential: a missing path satisfies nothing,
        // not even `!=` (use `not $.name == "a"` for the complement).
        assert_eq!(run("filter $.name != \"a\"").len(), 1);
        assert_eq!(run("filter not $.name == \"a\"").len(), 2);
        assert_eq!(
            run("filter $.n == \"5\"").len(),
            0,
            "kind mismatch is false"
        );
    }

    #[test]
    fn filter_boolean_combinators() {
        assert_eq!(run("filter exists $.name and $.n > 5").len(), 1);
        assert_eq!(run("filter $.n < 6 or $.n > 9").len(), 2);
        assert_eq!(run("filter not exists $.name").len(), 1);
    }

    #[test]
    fn filter_through_arrays() {
        let out = run("filter $.tags[] == \"y\"");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("id"), Some(&json!(1)));
    }

    #[test]
    fn project_keeps_routes_only() {
        let out = run("project $.id, $.name");
        assert_eq!(out[0], json!({"id": 1, "name": "a"}));
        assert_eq!(
            out[1],
            json!({"id": 2}),
            "missing optional field stays missing"
        );
    }

    #[test]
    fn project_whole_row() {
        let p = Pipeline::parse("project $").unwrap();
        assert_eq!(p.eval(&rows()).unwrap(), rows());
    }

    #[test]
    fn flatten_multiplies_and_drops() {
        let out = run("flatten $.tags");
        // Row 1 → two rows; row 2 (empty array) and row 3 (missing) drop.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("tags"), Some(&json!("x")));
        assert_eq!(out[1].get("tags"), Some(&json!("y")));
        // Other fields are preserved.
        assert_eq!(out[0].get("id"), Some(&json!(1)));
    }

    #[test]
    fn flatten_root() {
        let p = Pipeline::parse("flatten $").unwrap();
        let out = p.eval(&[json!([1, 2]), json!([3])]).unwrap();
        assert_eq!(out, vec![json!(1), json!(2), json!(3)]);
    }

    #[test]
    fn limit_truncates() {
        assert_eq!(run("limit 2").len(), 2);
        assert_eq!(run("limit 0").len(), 0);
        assert_eq!(run("limit 99").len(), 3);
    }

    #[test]
    fn pipeline_composition() {
        let out = run("flatten $.tags\nfilter $.tags == \"y\"\nproject $.id, $.tags");
        assert_eq!(out, vec![json!({"id": 1, "tags": "y"})]);
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let p = Pipeline::new();
        assert_eq!(p.eval(&rows()).unwrap(), rows());
    }
}

#[cfg(test)]
mod distinct_count_tests {
    use super::*;
    use typefuse_json::json;

    fn run_on(text: &str, rows: &[Value]) -> Vec<Value> {
        Pipeline::parse(text).unwrap().eval(rows).unwrap()
    }

    #[test]
    fn distinct_keeps_first_occurrences() {
        let rows = vec![
            json!({"a": 1}),
            json!({"a": 2}),
            json!({"a": 1}),
            json!({"a": 1}),
        ];
        let out = run_on("distinct", &rows);
        assert_eq!(out, vec![json!({"a": 1}), json!({"a": 2})]);
    }

    #[test]
    fn distinct_after_project_dedups_views() {
        let rows = vec![
            json!({"k": "x", "extra": 1}),
            json!({"k": "x", "extra": 2}),
            json!({"k": "y", "extra": 3}),
        ];
        let out = run_on("project $.k\ndistinct", &rows);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn count_replaces_rows() {
        let rows = vec![json!({"a": 1}), json!({"a": 2})];
        assert_eq!(run_on("count", &rows), vec![json!({"count": 2})]);
        assert_eq!(
            run_on("filter $.a > 99\ncount", &rows),
            vec![json!({"count": 0})]
        );
        // Operators compose after count too.
        assert_eq!(
            run_on("count\nproject $.count", &rows),
            vec![json!({"count": 2})]
        );
    }
}
