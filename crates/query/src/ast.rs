//! The query AST: paths, predicates, operators, pipelines.

use std::fmt;
use typefuse_json::Number;

/// One navigation step of a [`Path`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Step {
    /// Descend into a record field.
    Field(String),
    /// Descend into the elements of an array (`[]`).
    Item,
}

/// A root-anchored path, written `$.a.b[].c`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    steps: Vec<Step>,
}

impl Path {
    /// The root path `$`.
    pub fn root() -> Self {
        Path { steps: Vec::new() }
    }

    /// Build from steps.
    pub fn new(steps: Vec<Step>) -> Self {
        Path { steps }
    }

    /// The steps in order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Whether this is the root path.
    pub fn is_root(&self) -> bool {
        self.steps.is_empty()
    }

    /// Append a field step (builder-style).
    pub fn field(mut self, name: impl Into<String>) -> Self {
        self.steps.push(Step::Field(name.into()));
        self
    }

    /// Append an item step (builder-style).
    pub fn item(mut self) -> Self {
        self.steps.push(Step::Item);
        self
    }

    /// Whether `self` is a strict or equal prefix of `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.steps.starts_with(&self.steps)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$")?;
        for step in &self.steps {
            match step {
                Step::Field(name) => write!(f, ".{name}")?,
                Step::Item => write!(f, "[]")?,
            }
        }
        Ok(())
    }
}

/// A scalar comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Comparison::Eq => "==",
            Comparison::Ne => "!=",
            Comparison::Lt => "<",
            Comparison::Gt => ">",
        })
    }
}

/// A scalar literal in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => write!(f, "{n}"),
            Literal::String(s) => write!(f, "{s:?}"),
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Null => write!(f, "null"),
        }
    }
}

/// A row predicate for `filter`.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// The path resolves to at least one value in the row.
    Exists(Path),
    /// Some value at the path compares true against the literal.
    Compare(Path, Comparison, Literal),
    /// Negation.
    Not(Box<Predicate>),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Exists(p) => write!(f, "exists {p}"),
            Predicate::Compare(p, op, lit) => write!(f, "{p} {op} {lit}"),
            Predicate::Not(inner) => write!(f, "not ({inner})"),
            Predicate::And(a, b) => write!(f, "({a}) and ({b})"),
            Predicate::Or(a, b) => write!(f, "({a}) or ({b})"),
        }
    }
}

/// One pipeline operator.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Keep rows satisfying the predicate.
    Filter(Predicate),
    /// Keep only the listed paths of each row (schema-based projection).
    Project(Vec<Path>),
    /// Replace each row by one row per element of the array at the path;
    /// rows where the path is absent or the array is empty are dropped.
    Flatten(Path),
    /// Keep at most `n` rows.
    Limit(usize),
    /// Drop duplicate rows (first occurrence wins).
    Distinct,
    /// Replace the rows by a single `{count: Num}` row.
    Count,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Filter(p) => write!(f, "filter {p}"),
            Op::Project(paths) => {
                write!(f, "project ")?;
                for (i, p) in paths.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Op::Flatten(p) => write!(f, "flatten {p}"),
            Op::Limit(n) => write!(f, "limit {n}"),
            Op::Distinct => write!(f, "distinct"),
            Op::Count => write!(f, "count"),
        }
    }
}

/// A sequence of operators applied left to right.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pipeline {
    /// The operators in application order.
    pub ops: Vec<Op>,
}

impl Pipeline {
    /// An empty (identity) pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an operator (builder-style).
    pub fn then(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_display_and_builders() {
        let p = Path::root().field("a").item().field("b");
        assert_eq!(p.to_string(), "$.a[].b");
        assert_eq!(Path::root().to_string(), "$");
        assert!(Path::root().is_root());
    }

    #[test]
    fn path_prefix() {
        let a = Path::root().field("x");
        let ab = Path::root().field("x").item();
        assert!(a.is_prefix_of(&ab));
        assert!(a.is_prefix_of(&a));
        assert!(!ab.is_prefix_of(&a));
        assert!(Path::root().is_prefix_of(&ab));
    }

    #[test]
    fn display_round_trip_shapes() {
        let pred = Predicate::And(
            Box::new(Predicate::Exists(Path::root().field("a"))),
            Box::new(Predicate::Compare(
                Path::root().field("n"),
                Comparison::Gt,
                Literal::Number(Number::Int(3)),
            )),
        );
        assert_eq!(pred.to_string(), "(exists $.a) and ($.n > 3)");

        let pipe = Pipeline::new()
            .then(Op::Filter(pred))
            .then(Op::Project(vec![Path::root().field("a")]))
            .then(Op::Limit(10));
        let text = pipe.to_string();
        assert!(text.contains("filter"));
        assert!(text.contains("project $.a"));
        assert!(text.ends_with("limit 10"));
    }
}
