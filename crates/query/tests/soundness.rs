//! The soundness guarantee of schema-checked querying:
//!
//! > If `pipeline.check(schema)` succeeds with output schema `S`, then
//! > for any rows admitted by `schema`, `pipeline.eval(rows)` succeeds
//! > and every output row is admitted by `S`.
//!
//! This is the operational payoff of the paper's completeness property —
//! a complete schema lets the checker promise, statically, that a query
//! will not hit structural surprises at run time.

use proptest::prelude::*;
use typefuse_infer::{fuse_all, infer_type};
use typefuse_json::Value;
use typefuse_query::{Op, Path, Pipeline, Predicate};
use typefuse_types::testkit::arb_value;
use typefuse_types::Type;

/// Build a random pipeline whose paths are drawn from the *actual* paths
/// of the dataset, so that checking usually succeeds and the interesting
/// branch is exercised.
fn arb_pipeline_for(values: &[Value]) -> BoxedStrategy<Pipeline> {
    // Collect candidate field paths (no [] steps for flatten safety).
    let mut field_paths: Vec<Path> = Vec::new();
    let mut all_paths: Vec<Path> = vec![Path::root()];
    for v in values {
        collect_paths(v, Path::root(), &mut field_paths, &mut all_paths);
    }
    field_paths.sort_by_key(|p| p.to_string());
    field_paths.dedup();
    all_paths.sort_by_key(|p| p.to_string());
    all_paths.dedup();

    let any_path = prop::sample::select(all_paths.clone());
    let field_path = if field_paths.is_empty() {
        Just(Path::root()).boxed()
    } else {
        prop::sample::select(field_paths).boxed()
    };

    let op = prop_oneof![
        3 => any_path.clone().prop_map(|p| Op::Filter(Predicate::Exists(p))),
        2 => prop::collection::vec(any_path, 1..3).prop_map(Op::Project),
        2 => field_path.prop_map(Op::Flatten),
        1 => (0usize..5).prop_map(Op::Limit),
        1 => Just(Op::Distinct),
        1 => Just(Op::Count),
    ];
    prop::collection::vec(op, 0..4)
        .prop_map(|ops| Pipeline { ops })
        .boxed()
}

fn collect_paths(v: &Value, prefix: Path, fields: &mut Vec<Path>, all: &mut Vec<Path>) {
    match v {
        Value::Object(map) => {
            for (key, child) in map.iter() {
                let p = prefix.clone().field(key);
                fields.push(p.clone());
                all.push(p.clone());
                collect_paths(child, p, fields, all);
            }
        }
        Value::Array(elems) => {
            let p = prefix.item();
            if !elems.is_empty() {
                all.push(p.clone());
            }
            for child in elems {
                // Paths through arrays are valid for filter/project but
                // not for flatten: only `all` collects them.
                collect_paths_items_only(child, p.clone(), all);
            }
        }
        _ => {}
    }
}

fn collect_paths_items_only(v: &Value, prefix: Path, all: &mut Vec<Path>) {
    match v {
        Value::Object(map) => {
            for (key, child) in map.iter() {
                let p = prefix.clone().field(key);
                all.push(p.clone());
                collect_paths_items_only(child, p, all);
            }
        }
        Value::Array(elems) => {
            let p = prefix.item();
            if !elems.is_empty() {
                all.push(p.clone());
            }
            for child in elems {
                collect_paths_items_only(child, p.clone(), all);
            }
        }
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn checked_pipelines_are_sound(
        (values, pipeline) in prop::collection::vec(arb_value(), 1..8)
            .prop_flat_map(|values| {
                let pipes = arb_pipeline_for(&values);
                (Just(values), pipes)
            })
    ) {
        let schema: Type =
            fuse_all(&values.iter().map(infer_type).collect::<Vec<_>>());
        // Checking may fail (e.g. flatten of a non-array path) — that is
        // the checker doing its job. Soundness speaks about successes.
        if let Ok(out_schema) = pipeline.check(&schema) {
            let out = pipeline.eval(&values).expect("eval is total");
            for row in &out {
                prop_assert!(
                    out_schema.admits(row),
                    "output schema {} rejects row {} (pipeline:\n{})",
                    out_schema, row, pipeline
                );
            }
        }
    }

    #[test]
    fn rejected_paths_really_do_not_exist(
        values in prop::collection::vec(arb_value(), 1..6)
    ) {
        // A path flagged UnknownPath never resolves in any admitted value.
        let schema = fuse_all(&values.iter().map(infer_type).collect::<Vec<_>>());
        let bogus = Path::root().field("surely_not_a_field_93");
        let pipeline = Pipeline::new().then(Op::Filter(Predicate::Exists(bogus.clone())));
        if pipeline.check(&schema).is_err() {
            for v in &values {
                let pipeline_on_value =
                    Pipeline::new().then(Op::Filter(Predicate::Exists(bogus.clone())));
                let out = pipeline_on_value.eval(std::slice::from_ref(v)).unwrap();
                prop_assert!(out.is_empty(), "checker said unknown but value matched");
            }
        }
    }

    #[test]
    fn projection_output_matches_prediction_exactly(
        values in prop::collection::vec(arb_value(), 1..6)
    ) {
        // For project-only pipelines the predicted schema must admit all
        // outputs AND the outputs must witness only predicted paths.
        let schema = fuse_all(&values.iter().map(infer_type).collect::<Vec<_>>());
        let mut fields: Vec<Path> = Vec::new();
        let mut all: Vec<Path> = Vec::new();
        for v in &values {
            collect_paths(v, Path::root(), &mut fields, &mut all);
        }
        if fields.is_empty() {
            return Ok(());
        }
        let request = vec![fields[0].clone()];
        let pipeline = Pipeline::new().then(Op::Project(request));
        let out_schema = pipeline.check(&schema).expect("existing path checks");
        let out = pipeline.eval(&values).unwrap();
        let predicted = typefuse_types::paths::type_paths(&out_schema);
        for row in &out {
            prop_assert!(out_schema.admits(row));
            for p in typefuse_types::paths::value_paths(row) {
                prop_assert!(predicted.contains(&p), "unpredicted path {}", p);
            }
        }
    }
}

#[test]
fn end_to_end_on_a_realistic_profile() {
    use typefuse_datagen::{DatasetProfile, Profile};

    let rows: Vec<Value> = Profile::NYTimes.generate(7, 300).collect();
    let schema = fuse_all(&rows.iter().map(infer_type).collect::<Vec<_>>());

    let pipeline = Pipeline::parse(
        "filter exists $.byline and $.word_count > 100\n\
         flatten $.keywords\n\
         filter $.keywords.name == \"subject\"\n\
         project $.headline.main, $.keywords.value, $.pub_date\n\
         limit 50",
    )
    .unwrap();

    let out_schema = pipeline.check(&schema).expect("pipeline type-checks");
    let out = pipeline.eval(&rows).unwrap();
    assert!(!out.is_empty(), "the profile produces matching rows");
    assert!(out.len() <= 50);
    for row in &out {
        assert!(out_schema.admits(row));
        assert!(row.get("headline").is_some());
        assert!(row.get("snippet").is_none(), "projected away");
    }

    // And the checker catches realistic mistakes statically:
    let typo = Pipeline::parse("project $.headlines.main").unwrap();
    assert!(typo.check(&schema).is_err(), "typo'd path must not check");
    let wrong_kind = Pipeline::parse("filter $.pub_date > 10").unwrap();
    assert!(wrong_kind.check(&schema).is_err(), "date is a string here");
}
