//! The locality-aware list scheduler and cost model.
//!
//! Time is simulated. Two resources matter:
//!
//! * **cores** — each node has `cores_per_node` of them; a task occupies
//!   one from claim to completion;
//! * **disks** — each node has one serialized read channel. Every task
//!   must stream its block from the disk of the replica node it reads
//!   from, so many tasks reading from the *same* node's disk queue up
//!   behind each other. This is the mechanism behind the paper's Table 7
//!   observation: with all HDFS blocks on one node, that node's disk
//!   feeds the whole cluster and most of the cluster idles.
//!
//! The scheduler repeatedly takes the earliest-free core (ties broken by
//! core index then node, which spreads the first wave across nodes the
//! way Spark's round-robin task assignment does) and hands it a pending
//! task, preferring local blocks. Under [`LocalityPolicy::Strict`] a core
//! never takes a non-local task. Everything is deterministic.

use super::cluster::{Block, ClusterSpec, LocalityPolicy};
use super::report::{SimReport, SimTask};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A simulated job: blocks to process and the CPU cost per record.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The input blocks (one task each).
    pub blocks: Vec<Block>,
    /// CPU seconds to infer-and-fuse one record. Calibrate from a real
    /// local measurement (the bench harness does) or use a nominal value.
    pub cpu_secs_per_record: f64,
}

/// Total-ordering key for the core heap: `(next_free_time, core, node)` —
/// the `core`-before-`node` tie-break makes simultaneous waves fan out
/// across nodes instead of piling onto node 0.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CoreSlot {
    free_at: f64,
    core: usize,
    node: usize,
}

impl Eq for CoreSlot {}

impl PartialOrd for CoreSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CoreSlot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.free_at
            .total_cmp(&other.free_at)
            .then(self.core.cmp(&other.core))
            .then(self.node.cmp(&other.node))
    }
}

/// Run the simulation, returning the full schedule.
pub fn simulate(spec: &ClusterSpec, workload: &Workload) -> SimReport {
    let mut pending: Vec<bool> = vec![true; workload.blocks.len()];
    let mut remaining = workload.blocks.len();
    let mut node_busy = vec![0.0f64; spec.nodes];
    let mut disk_free = vec![0.0f64; spec.nodes];
    let mut tasks: Vec<SimTask> = Vec::with_capacity(workload.blocks.len());

    let mut heap: BinaryHeap<Reverse<CoreSlot>> = (0..spec.nodes)
        .flat_map(|node| {
            (0..spec.cores_per_node).map(move |core| {
                Reverse(CoreSlot {
                    free_at: 0.0,
                    core,
                    node,
                })
            })
        })
        .collect();

    while remaining > 0 {
        let slot = match heap.pop() {
            Some(Reverse(slot)) => slot,
            // All cores parked: under Strict locality some blocks have no
            // replica on any live node; they stay unscheduled.
            None => break,
        };

        // Choose a task: first pending block local to this node; under
        // the relaxed policy fall back to the first pending block.
        let local_choice = workload
            .blocks
            .iter()
            .find(|b| pending[b.id] && b.replicas.contains(&slot.node))
            .map(|b| b.id);
        let choice = match (local_choice, spec.locality) {
            (Some(id), _) => Some(id),
            (None, LocalityPolicy::Relaxed) => {
                workload.blocks.iter().find(|b| pending[b.id]).map(|b| b.id)
            }
            (None, LocalityPolicy::Strict) => None,
        };

        let Some(id) = choice else {
            // This core can never run anything again under Strict
            // locality: park it by dropping it from the heap.
            continue;
        };

        let block = &workload.blocks[id];
        let local = block.replicas.contains(&slot.node);
        // Local reads come from this node's own disk; remote reads stream
        // from the first replica's disk over the network.
        let source = if local { slot.node } else { block.replicas[0] };
        let rate = if local {
            spec.disk_bytes_per_sec
        } else {
            spec.network_bytes_per_sec.min(spec.disk_bytes_per_sec)
        };
        let read_secs = block.size_bytes as f64 / rate.max(1.0);
        let cpu_secs = block.records as f64 * workload.cpu_secs_per_record;

        let claim = slot.free_at;
        let read_start = if source < disk_free.len() {
            claim.max(disk_free[source])
        } else {
            claim
        };
        let read_end = read_start + read_secs;
        if source < disk_free.len() {
            disk_free[source] = read_end;
        }
        let end = read_end + cpu_secs;

        pending[id] = false;
        remaining -= 1;
        node_busy[slot.node] += end - claim;
        tasks.push(SimTask {
            block: id,
            node: slot.node,
            start: claim,
            end,
            local,
        });
        heap.push(Reverse(CoreSlot {
            free_at: end,
            ..slot
        }));
    }

    let makespan = tasks.iter().map(|t| t.end).fold(0.0, f64::max);
    tasks.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.block.cmp(&b.block)));
    SimReport {
        makespan,
        node_busy,
        cores_per_node: spec.cores_per_node,
        tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::cluster::Placement;

    const BLOCK: u64 = 128 * 1024 * 1024;
    const RECORDS: u64 = 100_000;

    fn uniform_blocks(n: usize, placement: Placement, nodes: usize) -> Vec<Block> {
        placement.place(&vec![(BLOCK, RECORDS); n], nodes)
    }

    fn spec(locality: LocalityPolicy) -> ClusterSpec {
        ClusterSpec {
            locality,
            ..ClusterSpec::default()
        }
    }

    fn one_task_secs() -> f64 {
        BLOCK as f64 / 150.0e6 + RECORDS as f64 * 10e-6
    }

    #[test]
    fn single_node_placement_idles_the_rest_of_the_cluster() {
        // The Table 7 phenomenon: all blocks on node 0 (replication 2 →
        // nodes 0 and 1), strict locality ⇒ 4 of 6 nodes idle.
        let blocks = uniform_blocks(
            24,
            Placement::SingleNode {
                node: 0,
                replication: 2,
            },
            6,
        );
        let report = simulate(
            &spec(LocalityPolicy::Strict),
            &Workload {
                blocks,
                cpu_secs_per_record: 10e-6,
            },
        );
        assert_eq!(report.busy_nodes(), 2);
        assert_eq!(report.idle_nodes(), 4);
        assert_eq!(report.local_tasks(), 24);
    }

    #[test]
    fn round_robin_placement_uses_every_node() {
        let blocks = uniform_blocks(24, Placement::RoundRobin { replication: 2 }, 6);
        let report = simulate(
            &spec(LocalityPolicy::Strict),
            &Workload {
                blocks,
                cpu_secs_per_record: 10e-6,
            },
        );
        assert_eq!(report.busy_nodes(), 6);
        assert_eq!(report.idle_nodes(), 0);
    }

    #[test]
    fn balanced_placement_is_faster() {
        let single = uniform_blocks(
            24,
            Placement::SingleNode {
                node: 0,
                replication: 2,
            },
            6,
        );
        let spread = uniform_blocks(24, Placement::RoundRobin { replication: 2 }, 6);
        let w = |blocks| Workload {
            blocks,
            cpu_secs_per_record: 10e-6,
        };
        let t_single = simulate(&spec(LocalityPolicy::Strict), &w(single)).makespan;
        let t_spread = simulate(&spec(LocalityPolicy::Strict), &w(spread)).makespan;
        assert!(
            t_spread < t_single / 2.0,
            "spread {t_spread} should be well under half of {t_single}"
        );
    }

    #[test]
    fn disk_serialization_bounds_single_node_makespan() {
        // 24 blocks readable only from node 0's disk: the disk streams
        // them one at a time, so makespan ≥ 24 · read_time.
        let blocks = uniform_blocks(
            24,
            Placement::SingleNode {
                node: 0,
                replication: 1,
            },
            6,
        );
        let report = simulate(
            &spec(LocalityPolicy::Strict),
            &Workload {
                blocks,
                cpu_secs_per_record: 10e-6,
            },
        );
        let read = BLOCK as f64 / 150.0e6;
        assert!(report.makespan >= 24.0 * read);
        assert_eq!(report.busy_nodes(), 1);
    }

    #[test]
    fn relaxed_policy_uses_idle_nodes_via_network() {
        let blocks = uniform_blocks(
            120,
            Placement::SingleNode {
                node: 0,
                replication: 1,
            },
            6,
        );
        let report = simulate(
            &spec(LocalityPolicy::Relaxed),
            &Workload {
                blocks,
                cpu_secs_per_record: 10e-6,
            },
        );
        assert_eq!(report.busy_nodes(), 6);
        assert!(report.remote_tasks() > 0);
        // Queueing behind node 0's disk makes some tasks much slower than
        // an uncontended local run.
        assert!(report
            .tasks
            .iter()
            .any(|t| (t.end - t.start) > one_task_secs() * 1.05));
    }

    #[test]
    fn makespan_bounds_uncontended() {
        // One block per node, perfectly placed: makespan ≈ one task time.
        let blocks = uniform_blocks(6, Placement::RoundRobin { replication: 1 }, 6);
        let report = simulate(
            &spec(LocalityPolicy::Strict),
            &Workload {
                blocks,
                cpu_secs_per_record: 10e-6,
            },
        );
        assert!((report.makespan - one_task_secs()).abs() < 1e-6);
        assert!(report.utilization() > 0.0);
    }

    #[test]
    fn empty_workload() {
        let report = simulate(
            &ClusterSpec::default(),
            &Workload {
                blocks: vec![],
                cpu_secs_per_record: 1e-6,
            },
        );
        assert_eq!(report.makespan, 0.0);
        assert!(report.tasks.is_empty());
    }

    #[test]
    fn determinism() {
        let blocks = uniform_blocks(17, Placement::RoundRobin { replication: 2 }, 6);
        let w = Workload {
            blocks,
            cpu_secs_per_record: 7e-6,
        };
        let a = simulate(&ClusterSpec::default(), &w);
        let b = simulate(&ClusterSpec::default(), &w);
        assert_eq!(a, b);
    }

    #[test]
    fn skewed_block_sizes_straggle() {
        // One huge block dominates the makespan.
        let mut payloads = vec![(1_000_000u64, 1_000u64); 11];
        payloads.push((3_000_000_000, 3_000_000));
        let blocks = Placement::RoundRobin { replication: 1 }.place(&payloads, 6);
        let report = simulate(
            &spec(LocalityPolicy::Strict),
            &Workload {
                blocks,
                cpu_secs_per_record: 1e-6,
            },
        );
        let huge = 3.0e9 / 150.0e6 + 3.0e6 * 1e-6;
        assert!(
            (report.makespan - huge).abs() < 0.5,
            "makespan {}",
            report.makespan
        );
    }

    #[test]
    fn unplaceable_blocks_are_skipped_under_strict() {
        // A replica list pointing at a nonexistent node: strict locality
        // cannot schedule it; the simulation terminates with the block
        // unprocessed rather than hanging.
        let blocks = vec![Block {
            id: 0,
            size_bytes: 1,
            records: 1,
            replicas: vec![99],
        }];
        let report = simulate(
            &spec(LocalityPolicy::Strict),
            &Workload {
                blocks,
                cpu_secs_per_record: 1e-6,
            },
        );
        assert!(report.tasks.is_empty());
    }
}
