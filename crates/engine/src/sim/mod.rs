//! A deterministic cluster simulator.
//!
//! Section 6.2 of the paper reports two cluster phenomena that cannot be
//! reproduced on a laptop:
//!
//! * with the 22 GB NYTimes dataset stored by HDFS **on a single node**,
//!   "the computation was performed on two nodes while the remaining four
//!   nodes were idle" (the context of Table 7), and
//! * manually **partitioning the input** and processing each partition
//!   locally, fusing the small per-partition schemas at the end, restores
//!   full locality and brings the time to ~2.85 min per partition
//!   (Table 8).
//!
//! This module simulates exactly that mechanism: a cluster of
//! `nodes × cores`, blocks with replica placement, a locality-aware list
//! scheduler, and a cost model `read time + records · cpu_per_record`.
//! All arithmetic is on `f64` seconds with no randomness, so results are
//! exactly reproducible.

mod cluster;
mod report;
mod scheduler;

pub use cluster::{Block, ClusterSpec, LocalityPolicy, Placement};
pub use report::{SimReport, SimTask};
pub use scheduler::{simulate, Workload};
