//! Cluster description: nodes, cores, I/O rates, block placement.

/// Static description of a cluster.
///
/// The default mirrors the paper's testbed: six nodes, each with two
/// 10-core CPUs, connected by a 1 Gb link; disks are standard RAID.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Cores per node (parallel tasks a node can run).
    pub cores_per_node: usize,
    /// Sequential local-disk read throughput, bytes/second.
    pub disk_bytes_per_sec: f64,
    /// Network throughput for remote block reads, bytes/second.
    pub network_bytes_per_sec: f64,
    /// Task-locality policy of the scheduler.
    pub locality: LocalityPolicy,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            nodes: 6,
            cores_per_node: 20,
            disk_bytes_per_sec: 150.0e6,
            // 1 Gb/s link ≈ 125 MB/s, shared.
            network_bytes_per_sec: 125.0e6,
            locality: LocalityPolicy::Strict,
        }
    }
}

impl ClusterSpec {
    /// Total cores in the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }
}

/// How far a task may run from its data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalityPolicy {
    /// Tasks run only on nodes holding a replica of their block — the
    /// behaviour the paper observed (computation stuck on the nodes that
    /// had the data).
    Strict,
    /// Any node may run any task; non-local reads pay the network rate.
    Relaxed,
}

/// One input block (HDFS-block analogue): its payload and which nodes
/// hold replicas.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Stable identifier (index into the workload).
    pub id: usize,
    /// Payload size in bytes (drives read time).
    pub size_bytes: u64,
    /// Number of JSON records in the block (drives CPU time).
    pub records: u64,
    /// Nodes holding a replica. Never empty.
    pub replicas: Vec<usize>,
}

/// Replica-placement strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// All replicas of every block on one node (plus `replication - 1`
    /// copies on the following nodes) — the accidental placement the
    /// paper hit when loading the dataset into HDFS from one machine.
    SingleNode {
        /// The node that ingested the data.
        node: usize,
        /// Replication factor (≥ 1).
        replication: usize,
    },
    /// Block *i* starts at node `i mod nodes`, replicas on the following
    /// nodes — the balanced placement the manual partitioning achieves.
    RoundRobin {
        /// Replication factor (≥ 1).
        replication: usize,
    },
}

impl Placement {
    /// Compute the replica node list for block `index` on a cluster of
    /// `nodes` nodes.
    pub fn replicas_for(&self, index: usize, nodes: usize) -> Vec<usize> {
        let nodes = nodes.max(1);
        match *self {
            Placement::SingleNode { node, replication } => {
                let r = replication.clamp(1, nodes);
                (0..r).map(|k| (node + k) % nodes).collect()
            }
            Placement::RoundRobin { replication } => {
                let r = replication.clamp(1, nodes);
                (0..r).map(|k| (index + k) % nodes).collect()
            }
        }
    }

    /// Build blocks from `(size_bytes, records)` pairs under this
    /// placement.
    pub fn place(&self, payloads: &[(u64, u64)], nodes: usize) -> Vec<Block> {
        payloads
            .iter()
            .enumerate()
            .map(|(id, &(size_bytes, records))| Block {
                id,
                size_bytes,
                records,
                replicas: self.replicas_for(id, nodes),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let spec = ClusterSpec::default();
        assert_eq!(spec.nodes, 6);
        assert_eq!(spec.cores_per_node, 20);
        assert_eq!(spec.total_cores(), 120);
    }

    #[test]
    fn single_node_placement_concentrates_replicas() {
        let p = Placement::SingleNode {
            node: 2,
            replication: 2,
        };
        for i in 0..10 {
            assert_eq!(p.replicas_for(i, 6), vec![2, 3]);
        }
    }

    #[test]
    fn round_robin_spreads_replicas() {
        let p = Placement::RoundRobin { replication: 3 };
        assert_eq!(p.replicas_for(0, 6), vec![0, 1, 2]);
        assert_eq!(p.replicas_for(5, 6), vec![5, 0, 1]);
    }

    #[test]
    fn replication_is_clamped_to_cluster_size() {
        let p = Placement::RoundRobin { replication: 10 };
        assert_eq!(p.replicas_for(0, 3).len(), 3);
        let p = Placement::SingleNode {
            node: 0,
            replication: 0,
        };
        assert_eq!(p.replicas_for(0, 3), vec![0]);
    }

    #[test]
    fn place_assigns_ids_and_payloads() {
        let p = Placement::RoundRobin { replication: 1 };
        let blocks = p.place(&[(100, 10), (200, 20)], 4);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].id, 0);
        assert_eq!(blocks[1].size_bytes, 200);
        assert_eq!(blocks[1].replicas, vec![1]);
    }
}
