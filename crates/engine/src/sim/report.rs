//! Simulation results.

/// One scheduled task in the simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTask {
    /// The block the task processed.
    pub block: usize,
    /// The node it ran on.
    pub node: usize,
    /// Start time, seconds from simulation start.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Whether the block was local to the node.
    pub local: bool,
}

/// The outcome of a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Completion time of the last task, seconds.
    pub makespan: f64,
    /// Busy core-seconds accumulated per node (a node with `c` cores can
    /// accumulate up to `c x makespan`).
    pub node_busy: Vec<f64>,
    /// Cores per node, used to normalise utilisation.
    pub cores_per_node: usize,
    /// Every scheduled task.
    pub tasks: Vec<SimTask>,
}

impl SimReport {
    /// Number of tasks that read their block locally.
    pub fn local_tasks(&self) -> usize {
        self.tasks.iter().filter(|t| t.local).count()
    }

    /// Number of tasks that read over the network.
    pub fn remote_tasks(&self) -> usize {
        self.tasks.len() - self.local_tasks()
    }

    /// Nodes that executed at least one task.
    pub fn busy_nodes(&self) -> usize {
        self.node_busy.iter().filter(|&&b| b > 0.0).count()
    }

    /// Nodes that never ran anything — the paper's "remaining four nodes
    /// were idle".
    pub fn idle_nodes(&self) -> usize {
        self.node_busy.len() - self.busy_nodes()
    }

    /// Mean *core* utilisation over the makespan, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.node_busy.is_empty() || self.cores_per_node == 0 {
            return 0.0;
        }
        let total_busy: f64 = self.node_busy.iter().sum();
        total_busy / (self.makespan * self.node_busy.len() as f64 * self.cores_per_node as f64)
    }

    /// Busy seconds of the busiest node.
    pub fn max_node_busy(&self) -> f64 {
        self.node_busy.iter().cloned().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            makespan: 10.0,
            node_busy: vec![10.0, 5.0, 0.0, 0.0],
            cores_per_node: 1,
            tasks: vec![
                SimTask {
                    block: 0,
                    node: 0,
                    start: 0.0,
                    end: 10.0,
                    local: true,
                },
                SimTask {
                    block: 1,
                    node: 1,
                    start: 0.0,
                    end: 5.0,
                    local: false,
                },
            ],
        }
    }

    #[test]
    fn locality_counts() {
        let r = report();
        assert_eq!(r.local_tasks(), 1);
        assert_eq!(r.remote_tasks(), 1);
    }

    #[test]
    fn busy_and_idle_nodes() {
        let r = report();
        assert_eq!(r.busy_nodes(), 2);
        assert_eq!(r.idle_nodes(), 2);
    }

    #[test]
    fn utilization_is_mean_over_makespan() {
        let r = report();
        assert!((r.utilization() - 15.0 / 40.0).abs() < 1e-12);
        assert_eq!(r.max_node_busy(), 10.0);
    }

    #[test]
    fn degenerate_report() {
        let r = SimReport {
            makespan: 0.0,
            node_busy: vec![],
            cores_per_node: 1,
            tasks: vec![],
        };
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.busy_nodes(), 0);
    }
}
