//! Simulation results.

/// One scheduled task in the simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTask {
    /// The block the task processed.
    pub block: usize,
    /// The node it ran on.
    pub node: usize,
    /// Start time, seconds from simulation start.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Whether the block was local to the node.
    pub local: bool,
}

/// The outcome of a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Completion time of the last task, seconds.
    pub makespan: f64,
    /// Busy core-seconds accumulated per node (a node with `c` cores can
    /// accumulate up to `c x makespan`).
    pub node_busy: Vec<f64>,
    /// Cores per node, used to normalise utilisation.
    pub cores_per_node: usize,
    /// Every scheduled task.
    pub tasks: Vec<SimTask>,
}

impl SimReport {
    /// Number of tasks that read their block locally.
    pub fn local_tasks(&self) -> usize {
        self.tasks.iter().filter(|t| t.local).count()
    }

    /// Number of tasks that read over the network.
    pub fn remote_tasks(&self) -> usize {
        self.tasks.len() - self.local_tasks()
    }

    /// Nodes that executed at least one task.
    pub fn busy_nodes(&self) -> usize {
        self.node_busy.iter().filter(|&&b| b > 0.0).count()
    }

    /// Nodes that never ran anything — the paper's "remaining four nodes
    /// were idle".
    pub fn idle_nodes(&self) -> usize {
        self.node_busy.len() - self.busy_nodes()
    }

    /// Mean *core* utilisation over the makespan, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.node_busy.is_empty() || self.cores_per_node == 0 {
            return 0.0;
        }
        let total_busy: f64 = self.node_busy.iter().sum();
        total_busy / (self.makespan * self.node_busy.len() as f64 * self.cores_per_node as f64)
    }

    /// Busy seconds of the busiest node.
    pub fn max_node_busy(&self) -> f64 {
        self.node_busy.iter().cloned().fold(0.0, f64::max)
    }

    /// Export in the same [`typefuse_obs::UtilizationReport`] JSON shape
    /// the real runtime emits, so simulated and measured utilization are
    /// directly comparable (`typefuse sim --report-json` vs the
    /// `utilization` blocks of `BENCH_*.json`).
    ///
    /// Each node becomes one worker slice. A node has `cores_per_node`
    /// cores, so its busy core-seconds are normalised to *mean per-core
    /// busy time* (`node_busy / cores`); that keeps every slice within
    /// the makespan like a real worker thread and makes
    /// [`UtilizationReport::utilization`](typefuse_obs::UtilizationReport::utilization)
    /// agree with [`SimReport::utilization`] exactly. Simulated tasks
    /// have no queue-wait model, so the per-slice wait histograms are
    /// empty.
    pub fn utilization_report(&self) -> typefuse_obs::UtilizationReport {
        let cores = self.cores_per_node.max(1) as f64;
        let to_ns = |secs: f64| (secs.max(0.0) * 1e9).round() as u64;
        typefuse_obs::UtilizationReport {
            wall_ns: to_ns(self.makespan),
            workers: self
                .node_busy
                .iter()
                .enumerate()
                .map(|(node, &busy)| typefuse_obs::WorkerSlice {
                    worker: node,
                    tasks: self.tasks.iter().filter(|t| t.node == node).count() as u64,
                    busy_ns: to_ns(busy / cores),
                    queue_wait: typefuse_obs::HistogramReport::default(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            makespan: 10.0,
            node_busy: vec![10.0, 5.0, 0.0, 0.0],
            cores_per_node: 1,
            tasks: vec![
                SimTask {
                    block: 0,
                    node: 0,
                    start: 0.0,
                    end: 10.0,
                    local: true,
                },
                SimTask {
                    block: 1,
                    node: 1,
                    start: 0.0,
                    end: 5.0,
                    local: false,
                },
            ],
        }
    }

    #[test]
    fn locality_counts() {
        let r = report();
        assert_eq!(r.local_tasks(), 1);
        assert_eq!(r.remote_tasks(), 1);
    }

    #[test]
    fn busy_and_idle_nodes() {
        let r = report();
        assert_eq!(r.busy_nodes(), 2);
        assert_eq!(r.idle_nodes(), 2);
    }

    #[test]
    fn utilization_is_mean_over_makespan() {
        let r = report();
        assert!((r.utilization() - 15.0 / 40.0).abs() < 1e-12);
        assert_eq!(r.max_node_busy(), 10.0);
    }

    #[test]
    fn utilization_report_matches_sim_utilization_and_shape() {
        let mut r = report();
        r.cores_per_node = 2;
        let u = r.utilization_report();
        assert_eq!(u.wall_ns, 10_000_000_000);
        assert_eq!(u.workers.len(), 4);
        // Node 0: 10 core-s over 2 cores → 5 s mean per-core busy.
        assert_eq!(u.workers[0].busy_ns, 5_000_000_000);
        assert_eq!(u.workers[0].tasks, 1);
        assert_eq!(u.workers[2].busy_ns, 0);
        assert_eq!(u.busy_workers(), r.busy_nodes());
        assert_eq!(u.idle_workers(), r.idle_nodes());
        assert!(
            (u.utilization() - r.utilization()).abs() < 1e-9,
            "sim and shared formulas agree: {} vs {}",
            u.utilization(),
            r.utilization()
        );
        let json = u.to_json();
        assert!(json.contains("\"workers\":["), "{json}");
        assert!(json.contains("\"idle_workers\":2"), "{json}");
    }

    #[test]
    fn degenerate_report() {
        let r = SimReport {
            makespan: 0.0,
            node_busy: vec![],
            cores_per_node: 1,
            tasks: vec![],
        };
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.busy_nodes(), 0);
    }
}
