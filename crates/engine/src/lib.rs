//! # typefuse-engine
//!
//! The distributed-execution substrate standing in for Apache Spark.
//!
//! The paper (Section 5.2) needs exactly two things from Spark:
//!
//! 1. **A parallel map + associative reduce** over a partitioned
//!    collection. [`Runtime`] (a work-stealing-free, queue-fed thread
//!    pool) and [`Dataset`] provide `map`, `map_partitions`, `reduce` and
//!    `aggregate` with the same semantics as the Spark RDD operations the
//!    paper's Scala implementation uses. Associativity of the reduce
//!    operator is what makes every execution order equivalent; the
//!    topology is configurable through [`ReducePlan`] for the ablation
//!    bench.
//! 2. **A cluster whose data placement governs utilisation** — Section 6.2
//!    observes that with all HDFS blocks on one node, only two of six
//!    nodes did any work, and that explicit partitioning restores
//!    locality. Real hardware like that is not available here, so the
//!    [`sim`] module provides a deterministic discrete-event cluster
//!    simulator (nodes × cores, block placement, locality-aware
//!    scheduling, network cost) that reproduces that behaviour for the
//!    Table 7 / Table 8 experiments.
//!
//! Every data-path operation reports [`metrics`] (per-task wall time,
//! items processed) so the bench harness can print per-partition rows
//! like the paper's Table 8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod dataset;
pub mod fused;
pub mod metrics;
pub mod reduce;
pub mod runtime;
pub mod sim;

pub use background::{spawn_periodic, BackgroundTask, Tick};
pub use dataset::Dataset;
pub use metrics::{StageMetrics, TaskMetrics};
pub use reduce::ReducePlan;
pub use runtime::{Runtime, WorkerPanic};
