//! Trait-driven Reduce phase: the engine's reduce written once against
//! [`Fuser`].
//!
//! Before this module every caller (pipeline, CLI, bench runner) wired
//! its own closures into [`Dataset::reduce`] for each fusion strategy —
//! plain [`FuseConfig`](typefuse_infer::FuseConfig) fusion, recorded
//! fusion, path counting. The [`Fuser`] trait captures the common shape
//! (identity / absorb / merge / extract), and this module provides the
//! two dataset entry points everything now goes through:
//!
//! * [`Dataset::reduce_fused`] — over already inferred types
//!   (the event fast path produces these directly);
//! * [`Dataset::fuse_values`] — over raw values, using the strategy's
//!   `absorb_value` (which the counting fuser overrides to see paths).
//!
//! Both run partition-local folds on the [`Runtime`], drop identity
//! partials (empty partitions — the `ε` of Theorem 5.4), and combine the
//! rest with [`ReducePlan::combine_recorded`], so reduce topology,
//! per-level spans and fan-in histograms work identically for every
//! strategy.

use crate::dataset::Dataset;
use crate::metrics::StageMetrics;
use crate::reduce::ReducePlan;
use crate::runtime::{Runtime, WorkerPanic};
use typefuse_infer::Fuser;
use typefuse_json::Value;
use typefuse_obs::Recorder;
use typefuse_types::Type;

/// Fold one partition into a strategy accumulator.
fn fold_partition<T, F, A>(fuser: &F, part: &[T], absorb: A) -> F::Acc
where
    F: Fuser,
    A: Fn(&F, &mut F::Acc, &T),
{
    let mut acc = fuser.empty();
    for item in part {
        absorb(fuser, &mut acc, item);
    }
    acc
}

/// Combine per-partition partials under `plan`, dropping identities.
fn combine_partials<F: Fuser>(
    rt: &Runtime,
    plan: ReducePlan,
    fuser: &F,
    partials: Vec<F::Acc>,
    rec: &Recorder,
) -> Result<Option<F::Acc>, WorkerPanic> {
    let partials: Vec<F::Acc> = partials
        .into_iter()
        .filter(|acc| !fuser.is_empty_acc(acc))
        .collect();
    plan.try_combine_recorded(
        rt,
        partials,
        |a, b| {
            let mut merged = a.clone();
            fuser.merge(&mut merged, b);
            merged
        },
        rec,
    )
}

impl<T: Send + Sync> Dataset<T> {
    /// The fully generic reduce: fold every partition with a
    /// caller-supplied absorb step, then combine the non-identity
    /// partials under `plan`. [`Dataset::reduce_fused`] and
    /// [`Dataset::fuse_values`] are thin wrappers; callers with richer
    /// items — e.g. the profiled pipeline's `(line, text)` pairs, where
    /// absorb needs the input line for provenance — use this directly.
    pub fn reduce_items<F, A>(
        &self,
        rt: &Runtime,
        plan: ReducePlan,
        fuser: &F,
        rec: &Recorder,
        absorb: A,
    ) -> (Option<F::Acc>, StageMetrics)
    where
        F: Fuser,
        A: Fn(&F, &mut F::Acc, &T) + Sync,
    {
        let (acc, metrics) = self.try_reduce_items(rt, plan, fuser, rec, absorb);
        match acc {
            Ok(acc) => (acc, metrics),
            Err(p) => panic!("{p}"),
        }
    }

    /// [`Dataset::reduce_items`] with panic isolation: a panic in the
    /// absorb step or in the strategy's `merge` surfaces as a
    /// [`WorkerPanic`] instead of aborting the process.
    pub fn try_reduce_items<F, A>(
        &self,
        rt: &Runtime,
        plan: ReducePlan,
        fuser: &F,
        rec: &Recorder,
        absorb: A,
    ) -> (Result<Option<F::Acc>, WorkerPanic>, StageMetrics)
    where
        F: Fuser,
        A: Fn(&F, &mut F::Acc, &T) + Sync,
    {
        let (partials, metrics) = rt.try_run_indexed(self.partitions(), |_, part: &Vec<T>| {
            fold_partition(fuser, part, &absorb)
        });
        let acc = partials.and_then(|partials| combine_partials(rt, plan, fuser, partials, rec));
        (acc, metrics)
    }
}

impl Dataset<Type> {
    /// Reduce a dataset of inferred types to one fused schema with the
    /// given strategy. Returns `None` for an empty dataset (the paper's
    /// fusion has no bottom-free answer for zero records).
    pub fn reduce_fused<F: Fuser>(
        &self,
        rt: &Runtime,
        plan: ReducePlan,
        fuser: &F,
        rec: &Recorder,
    ) -> (Option<Type>, StageMetrics) {
        let (acc, metrics) =
            self.reduce_items(rt, plan, fuser, rec, |f, acc, ty| f.absorb_type(acc, ty));
        (acc.map(|acc| fuser.finish_schema(acc)), metrics)
    }

    /// [`Dataset::reduce_fused`] with panic isolation.
    pub fn try_reduce_fused<F: Fuser>(
        &self,
        rt: &Runtime,
        plan: ReducePlan,
        fuser: &F,
        rec: &Recorder,
    ) -> (Result<Option<Type>, WorkerPanic>, StageMetrics) {
        let (acc, metrics) =
            self.try_reduce_items(rt, plan, fuser, rec, |f, acc, ty| f.absorb_type(acc, ty));
        (
            acc.map(|acc| acc.map(|acc| fuser.finish_schema(acc))),
            metrics,
        )
    }
}

impl Dataset<Value> {
    /// Map + Reduce in one pass: fold raw values partition-locally with
    /// the strategy's `absorb_value`, then combine. Used by strategies
    /// that need the value itself (path counting) and by callers that
    /// never materialise a type-per-record dataset.
    pub fn fuse_values<F: Fuser>(
        &self,
        rt: &Runtime,
        plan: ReducePlan,
        fuser: &F,
        rec: &Recorder,
    ) -> (Option<F::Acc>, StageMetrics) {
        self.reduce_items(rt, plan, fuser, rec, |f, acc, v| f.absorb_value(acc, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_infer::{fuse_all, infer_type, Counting, FuseConfig, RecordedFuser};
    use typefuse_json::json;

    fn values() -> Vec<Value> {
        vec![
            json!({"a": 1, "b": "x"}),
            json!({"a": null}),
            json!({"a": 1, "c": [true]}),
            json!({"a": "s"}),
        ]
    }

    #[test]
    fn reduce_fused_matches_fuse_all() {
        let rt = Runtime::new(4);
        let types: Vec<Type> = values().iter().map(infer_type).collect();
        let expected = fuse_all(&types);
        for parts in 1..=5 {
            let d = Dataset::from_vec(types.clone(), parts);
            let (fused, _) = d.reduce_fused(
                &rt,
                ReducePlan::default(),
                &FuseConfig::default(),
                &Recorder::disabled(),
            );
            assert_eq!(fused, Some(expected.clone()), "{parts} partitions");
        }
    }

    #[test]
    fn empty_partitions_are_identity() {
        let rt = Runtime::new(2);
        let ty = infer_type(&json!({"k": 0}));
        let d = Dataset::from_partitions(vec![vec![], vec![ty.clone()], vec![]]);
        let (fused, _) = d.reduce_fused(
            &rt,
            ReducePlan::default(),
            &FuseConfig::default(),
            &Recorder::disabled(),
        );
        assert_eq!(fused, Some(ty));
    }

    #[test]
    fn empty_dataset_reduces_to_none() {
        let rt = Runtime::sequential();
        let d: Dataset<Type> = Dataset::from_partitions(vec![vec![], vec![]]);
        let (fused, _) = d.reduce_fused(
            &rt,
            ReducePlan::default(),
            &FuseConfig::default(),
            &Recorder::disabled(),
        );
        assert_eq!(fused, None);
    }

    #[test]
    fn recorded_fuser_counts_fusions_not_moves() {
        let rt = Runtime::new(2);
        let rec = Recorder::enabled();
        let types: Vec<Type> = values().iter().map(infer_type).collect();
        let d = Dataset::from_vec(types.clone(), 2);
        let fuser = RecordedFuser::new(FuseConfig::default(), rec.clone());
        let (fused, _) = d.reduce_fused(&rt, ReducePlan::default(), &fuser, &rec);
        assert_eq!(fused, Some(fuse_all(&types)));
        // 4 records in 2 partitions: one in-partition fusion each (the
        // first absorb is a move into ε), plus one cross-partition merge.
        assert_eq!(rec.counter_value("fuse.calls"), 3);
    }

    #[test]
    fn fuse_values_with_counting_strategy() {
        let rt = Runtime::new(4);
        let d = Dataset::from_vec(values(), 3);
        let (acc, _) = d.fuse_values(&rt, ReducePlan::default(), &Counting, &Recorder::disabled());
        let cs = acc.expect("non-empty").finish();
        assert_eq!(cs.total, 4);
        assert_eq!(cs.path_counts["$.a"], 4);
        assert_eq!(cs.path_counts["$.b"], 1);
        let types: Vec<Type> = values().iter().map(infer_type).collect();
        assert_eq!(cs.schema, fuse_all(&types));
    }

    #[test]
    fn reduce_items_profiles_with_line_provenance() {
        use typefuse_infer::Profiling;
        let lines: Vec<(u64, Value)> = values()
            .into_iter()
            .enumerate()
            .map(|(i, v)| (i as u64 + 1, v))
            .collect();
        let fuser = Profiling::default();
        let baseline = {
            let d = Dataset::from_vec(lines.clone(), 1);
            d.reduce_items(
                &Runtime::sequential(),
                ReducePlan::Sequential,
                &fuser,
                &Recorder::disabled(),
                |_, acc, (line, v): &(u64, Value)| acc.absorb_value_at(*line, v),
            )
            .0
            .expect("non-empty")
            .finish()
        };
        // b appears only at line 1, so line 2 demoted it.
        assert_eq!(baseline.get("$.b").unwrap().first_absent_line, Some(2));
        assert_eq!(baseline.get("$.a").unwrap().first_absent_line, None);
        let rt = Runtime::new(4);
        for parts in 2..=5 {
            for plan in [ReducePlan::Sequential, ReducePlan::Tree { arity: 2 }] {
                let d = Dataset::from_vec(lines.clone(), parts);
                let (acc, _) = d.reduce_items(
                    &rt,
                    plan,
                    &fuser,
                    &Recorder::disabled(),
                    |_, acc, (line, v): &(u64, Value)| acc.absorb_value_at(*line, v),
                );
                let profile = acc.expect("non-empty").finish();
                assert_eq!(profile, baseline, "{parts} partitions, {plan:?}");
                assert_eq!(profile.to_json(), baseline.to_json());
            }
        }
    }

    #[test]
    fn dedup_fuser_rides_reduce_fused_unchanged() {
        use typefuse_infer::DedupFuser;
        let rt = Runtime::new(4);
        // Repeat the values so shapes actually dedup.
        let types: Vec<Type> = values().iter().cycle().take(20).map(infer_type).collect();
        let expected = fuse_all(&types);
        let fuser = DedupFuser::plain(FuseConfig::default());
        for parts in 1..=5 {
            for plan in [ReducePlan::Sequential, ReducePlan::Tree { arity: 2 }] {
                let d = Dataset::from_vec(types.clone(), parts);
                let (fused, _) = d.reduce_fused(&rt, plan, &fuser, &Recorder::disabled());
                assert_eq!(
                    fused,
                    Some(expected.clone()),
                    "{parts} partitions, {plan:?}"
                );
            }
        }
    }

    #[test]
    fn dedup_fuser_emits_cache_and_shape_counters() {
        use typefuse_infer::DedupFuser;
        let rt = Runtime::new(2);
        let rec = Recorder::enabled();
        let types: Vec<Type> = values().iter().cycle().take(20).map(infer_type).collect();
        let d = Dataset::from_vec(types, 2);
        let fuser = DedupFuser::new(FuseConfig::default(), rec.clone());
        let (fused, _) = d.reduce_fused(&rt, ReducePlan::default(), &fuser, &rec);
        assert!(fused.is_some());
        assert_eq!(rec.counter_value("infer.distinct_shapes"), 4);
        assert!(rec.counter_value("fuse.cache_hits") > 0, "repeats hit");
        assert!(rec.counter_value("fuse.calls") > 0);
    }

    #[test]
    fn dedup_counting_matches_counting_through_fuse_values() {
        use typefuse_infer::DedupCounting;
        let rt = Runtime::new(4);
        let vals: Vec<Value> = values().into_iter().cycle().take(12).collect();
        let d = Dataset::from_vec(vals, 3);
        let plan = ReducePlan::default();
        let (plain, _) = d.fuse_values(&rt, plan, &Counting, &Recorder::disabled());
        let (dedup, _) = d.fuse_values(
            &rt,
            plan,
            &DedupCounting::new(FuseConfig::default()),
            &Recorder::disabled(),
        );
        let (plain, dedup) = (plain.unwrap().finish(), dedup.unwrap().finish());
        assert_eq!(plain.total, dedup.total);
        assert_eq!(plain.schema, dedup.schema);
        assert_eq!(plain.path_counts, dedup.path_counts);
    }

    #[test]
    fn fuse_values_partition_invariant() {
        let rt = Runtime::new(4);
        let vals = values();
        let baseline = {
            let d = Dataset::from_vec(vals.clone(), 1);
            d.fuse_values(
                &rt,
                ReducePlan::Sequential,
                &FuseConfig::default(),
                &Recorder::disabled(),
            )
            .0
        };
        for parts in 2..=5 {
            for plan in [ReducePlan::Sequential, ReducePlan::Tree { arity: 2 }] {
                let d = Dataset::from_vec(vals.clone(), parts);
                let (fused, _) =
                    d.fuse_values(&rt, plan, &FuseConfig::default(), &Recorder::disabled());
                assert_eq!(fused, baseline, "{parts} partitions, {plan:?}");
            }
        }
    }
}
