//! Combine topologies for the Reduce phase.
//!
//! With an associative operator every topology yields the same result
//! (Theorem 5.5 is exactly what licenses this); they differ only in
//! wall-clock behaviour:
//!
//! * [`ReducePlan::Sequential`] — fold the partials left to right on the
//!   driver, like Spark's `reduce` action collecting to the driver.
//! * [`ReducePlan::Tree`] — combine in parallel rounds of arity `k`, like
//!   Spark's `treeReduce`. With many per-partition partials this keeps
//!   the driver from becoming the bottleneck.
//!
//! The `reduce_topology` ablation bench measures the difference on real
//! fused types.

use crate::runtime::{Runtime, WorkerPanic};
use typefuse_obs::{span, Recorder};

/// How partial results are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReducePlan {
    /// Left fold on the calling thread.
    Sequential,
    /// Parallel rounds; each round combines groups of `arity` partials.
    Tree {
        /// Group size per round (values < 2 are clamped to 2).
        arity: usize,
    },
}

impl Default for ReducePlan {
    fn default() -> Self {
        ReducePlan::Tree { arity: 2 }
    }
}

impl ReducePlan {
    /// Combine the partials with the associative `op` according to this
    /// plan. Partials keep their left-to-right order within every group,
    /// so the plan is order-correct even for non-commutative associative
    /// operators. Returns `None` on empty input.
    pub fn combine<A, F>(self, rt: &Runtime, partials: Vec<A>, op: F) -> Option<A>
    where
        A: Send + Sync + Clone,
        F: Fn(&A, &A) -> A + Sync,
    {
        self.combine_recorded(rt, partials, op, &Recorder::disabled())
    }

    /// [`ReducePlan::combine`] with per-level instrumentation.
    ///
    /// When `rec` is enabled, each combine round is wrapped in a
    /// `reduce.level.N` span (level 0 is the first round over the raw
    /// partials) and the `reduce.fan_in` histogram records the number of
    /// partials entering every level. A `Sequential` plan is one level.
    /// With a disabled recorder this is exactly [`ReducePlan::combine`].
    pub fn combine_recorded<A, F>(
        self,
        rt: &Runtime,
        partials: Vec<A>,
        op: F,
        rec: &Recorder,
    ) -> Option<A>
    where
        A: Send + Sync + Clone,
        F: Fn(&A, &A) -> A + Sync,
    {
        match self.try_combine_recorded(rt, partials, op, rec) {
            Ok(r) => r,
            Err(p) => panic!("{p}"),
        }
    }

    /// [`ReducePlan::combine_recorded`] with panic isolation: a panic in
    /// the combine operator surfaces as a [`WorkerPanic`] instead of
    /// aborting the process.
    pub fn try_combine_recorded<A, F>(
        self,
        rt: &Runtime,
        partials: Vec<A>,
        op: F,
        rec: &Recorder,
    ) -> Result<Option<A>, WorkerPanic>
    where
        A: Send + Sync + Clone,
        F: Fn(&A, &A) -> A + Sync,
    {
        match self {
            ReducePlan::Sequential => {
                rec.record("reduce.fan_in", partials.len() as u64);
                let _level = span!(rec, "reduce.level", 0);
                // A sequential fold runs on the driver thread, so the
                // whole level is one catch_unwind scope.
                let groups = [partials];
                let (folded, _) = rt.try_run_indexed(&groups, |_, group: &Vec<A>| {
                    let mut iter = group.iter();
                    let first = iter.next()?;
                    let mut acc = first.clone();
                    for item in iter {
                        acc = op(&acc, item);
                    }
                    Some(acc)
                });
                Ok(folded?.pop().flatten())
            }
            ReducePlan::Tree { arity } => {
                let arity = arity.max(2);
                let mut partials = partials;
                if partials.is_empty() {
                    return Ok(None);
                }
                let mut level = 0u32;
                while partials.len() > 1 {
                    rec.record("reduce.fan_in", partials.len() as u64);
                    let _level = span!(rec, "reduce.level", level);
                    let groups: Vec<Vec<A>> = {
                        let mut gs = Vec::new();
                        let mut it = partials.into_iter().peekable();
                        while it.peek().is_some() {
                            gs.push(it.by_ref().take(arity).collect());
                        }
                        gs
                    };
                    let (combined, _) = rt.try_run_indexed(&groups, |_, group: &Vec<A>| {
                        let mut acc = group[0].clone();
                        for item in &group[1..] {
                            acc = op(&acc, item);
                        }
                        acc
                    });
                    partials = combined?;
                    level += 1;
                }
                Ok(partials.pop())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_fold() {
        let rt = Runtime::sequential();
        let r = ReducePlan::Sequential.combine(&rt, vec![1, 2, 3, 4], |a, b| a + b);
        assert_eq!(r, Some(10));
    }

    #[test]
    fn tree_matches_sequential_for_associative_ops() {
        let rt = Runtime::new(4);
        let partials: Vec<u64> = (1..=100).collect();
        let seq = ReducePlan::Sequential.combine(&rt, partials.clone(), |a, b| a + b);
        for arity in [2, 3, 4, 8, 100] {
            let tree = ReducePlan::Tree { arity }.combine(&rt, partials.clone(), |a, b| a + b);
            assert_eq!(tree, seq, "arity {arity}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let rt = Runtime::new(2);
        assert_eq!(
            ReducePlan::default().combine(&rt, Vec::<u32>::new(), |a, b| a + b),
            None
        );
        assert_eq!(
            ReducePlan::default().combine(&rt, vec![7u32], |a, b| a + b),
            Some(7)
        );
    }

    #[test]
    fn arity_is_clamped() {
        let rt = Runtime::new(2);
        let r = ReducePlan::Tree { arity: 0 }.combine(&rt, vec![1, 2, 3], |a, b| a + b);
        assert_eq!(r, Some(6));
    }

    #[test]
    fn string_concat_respects_group_order() {
        // Concatenation is associative but not commutative: tree reduce
        // must preserve the left-to-right order of partials.
        let rt = Runtime::new(4);
        let parts: Vec<String> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = ReducePlan::Tree { arity: 2 }.combine(&rt, parts, |a, b| format!("{a}{b}"));
        assert_eq!(out.as_deref(), Some("abcde"));
    }

    #[test]
    fn combine_recorded_emits_per_level_spans() {
        let rt = Runtime::new(2);
        let rec = Recorder::enabled();
        // 8 partials at arity 2: levels of 8, 4, 2 partials → 3 rounds.
        let partials: Vec<u64> = (1..=8).collect();
        let r = ReducePlan::Tree { arity: 2 }.combine_recorded(&rt, partials, |a, b| a + b, &rec);
        assert_eq!(r, Some(36));
        let report = rec.snapshot();
        assert!(report.spans.contains_key("reduce.level.0"));
        assert!(report.spans.contains_key("reduce.level.1"));
        assert!(report.spans.contains_key("reduce.level.2"));
        assert!(!report.spans.contains_key("reduce.level.3"));
        let fan_in = &report.histograms["reduce.fan_in"];
        assert_eq!(fan_in.count, 3);
        assert_eq!(fan_in.sum, 8 + 4 + 2);
    }

    #[test]
    fn combine_recorded_sequential_is_one_level() {
        let rt = Runtime::sequential();
        let rec = Recorder::enabled();
        let r = ReducePlan::Sequential.combine_recorded(&rt, vec![1u64, 2, 3], |a, b| a + b, &rec);
        assert_eq!(r, Some(6));
        let report = rec.snapshot();
        assert_eq!(report.spans["reduce.level.0"].count, 1);
        assert_eq!(report.histograms["reduce.fan_in"].sum, 3);
    }

    #[test]
    fn deep_tree_with_many_partials() {
        let rt = Runtime::new(8);
        let partials: Vec<u64> = vec![1; 10_000];
        let r = ReducePlan::Tree { arity: 2 }.combine(&rt, partials, |a, b| a + b);
        assert_eq!(r, Some(10_000));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        // Every topology computes the same result for an associative,
        // non-commutative operator (string concat), over any partials.
        #[test]
        fn all_plans_agree(
            partials in prop::collection::vec("[a-c]{0,3}", 0..40),
            arity in 0usize..10,
        ) {
            let rt = Runtime::new(3);
            let seq = ReducePlan::Sequential.combine(
                &rt,
                partials.clone(),
                |a: &String, b: &String| format!("{a}{b}"),
            );
            let tree = ReducePlan::Tree { arity }.combine(
                &rt,
                partials.clone(),
                |a: &String, b: &String| format!("{a}{b}"),
            );
            prop_assert_eq!(&tree, &seq);
            prop_assert_eq!(seq, (!partials.is_empty()).then(|| partials.concat()));
        }

        // Dataset::reduce is invariant under the partition count.
        #[test]
        fn dataset_reduce_is_partition_invariant(
            items in prop::collection::vec(0u64..1000, 0..60),
            parts in 1usize..12,
        ) {
            let rt = Runtime::new(4);
            let expected = items.iter().copied().reduce(u64::wrapping_add);
            let d = crate::Dataset::from_vec(items, parts);
            let got = d.reduce(&rt, ReducePlan::default(), |a, b| a.wrapping_add(*b));
            prop_assert_eq!(got, expected);
        }

        // aggregate == map-then-reduce for a homomorphic accumulator.
        #[test]
        fn aggregate_matches_map_reduce(
            items in prop::collection::vec("[a-z]{0,5}", 1..40),
            parts in 1usize..6,
        ) {
            let rt = Runtime::new(2);
            let d = crate::Dataset::from_vec(items, parts);
            let via_aggregate = d.aggregate(
                &rt,
                ReducePlan::default(),
                || 0usize,
                |acc, s| acc + s.len(),
                |a, b| a + b,
            );
            let via_map = d
                .map(&rt, |s| s.len())
                .reduce(&rt, ReducePlan::default(), |a, b| a + b)
                .unwrap_or(0);
            prop_assert_eq!(via_aggregate, via_map);
        }
    }
}
