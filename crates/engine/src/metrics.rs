//! Per-task and per-stage execution metrics.
//!
//! The paper reports per-partition object counts, distinct-type counts and
//! processing times (Table 8); these structures carry the raw measurements
//! out of the engine so the bench harness can print such rows.

use std::time::Duration;

/// Timing for one task (one partition of one stage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskMetrics {
    /// Index of the partition the task processed.
    pub partition: usize,
    /// Index of the worker thread that executed the task (0 on the
    /// sequential fast path). Grouping tasks by worker yields each
    /// worker's busy timeline — the per-worker utilization report.
    pub worker: usize,
    /// Wall-clock time the task spent executing.
    pub duration: Duration,
    /// Time the task spent queued before a worker picked it up: the gap
    /// between stage submission (all tasks enqueue at stage start) and
    /// execution start. Large queue waits with short durations mean the
    /// stage is worker-bound, not work-bound. Because every task
    /// enqueues at stage start, this is also the task's start offset
    /// within the stage: the task was busy on its worker over
    /// `[queue_wait, queue_wait + duration]`.
    pub queue_wait: Duration,
}

/// Aggregated metrics for one parallel stage.
#[derive(Debug, Clone, Default)]
pub struct StageMetrics {
    /// One entry per task, in partition order.
    pub tasks: Vec<TaskMetrics>,
    /// Wall-clock time of the whole stage (queueing + execution).
    pub wall: Duration,
}

impl StageMetrics {
    /// Build from task entries and the stage wall time.
    pub fn new(mut tasks: Vec<TaskMetrics>, wall: Duration) -> Self {
        tasks.sort_by_key(|t| t.partition);
        StageMetrics { tasks, wall }
    }

    /// Sum of per-task durations (total CPU-side work).
    pub fn total_task_time(&self) -> Duration {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// The longest task — the straggler that bounds the stage.
    pub fn max_task_time(&self) -> Duration {
        self.tasks
            .iter()
            .map(|t| t.duration)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Parallel speedup actually achieved: total task time / wall time.
    /// 1.0 means fully sequential; `workers` means perfect scaling.
    pub fn effective_parallelism(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            return 1.0;
        }
        self.total_task_time().as_secs_f64() / wall
    }

    /// Merge the metrics of a stage that ran **after** this one into
    /// this one (multi-stage pipelines). Partition indices are kept
    /// as-is.
    ///
    /// This is a *sequential-stage* merge: `wall` is the sum of both
    /// stages' wall times, which is correct when the stages ran
    /// back-to-back (map then reduce) and an overstatement if they
    /// overlapped. Stages that run concurrently should be reported
    /// separately (see [`StageMetrics::stage_report`]) rather than
    /// merged.
    pub fn merge(&mut self, other: &StageMetrics) {
        self.tasks.extend(other.tasks.iter().cloned());
        self.wall += other.wall;
    }

    /// Sum of per-task queue waits (scheduling overhead of the stage).
    pub fn total_queue_wait(&self) -> Duration {
        self.tasks.iter().map(|t| t.queue_wait).sum()
    }

    /// Convert to the serializable [`typefuse_obs::StageReport`] shape
    /// consumed by `RunReport` (per-task queue-wait vs execute time).
    pub fn stage_report(&self, name: &str) -> typefuse_obs::StageReport {
        typefuse_obs::StageReport {
            name: name.to_string(),
            wall_ns: self.wall.as_nanos() as u64,
            tasks: self
                .tasks
                .iter()
                .map(|t| typefuse_obs::TaskReport {
                    partition: t.partition,
                    worker: t.worker,
                    queue_wait_ns: t.queue_wait.as_nanos() as u64,
                    execute_ns: t.duration.as_nanos() as u64,
                })
                .collect(),
        }
    }

    /// Per-worker busy rollup of this stage — the real-runtime
    /// counterpart of the cluster simulator's node-utilization table.
    ///
    /// `workers` is the runtime's configured worker count: workers that
    /// never picked up a task still appear, with zero busy time, which
    /// is exactly the paper's Table 7 phenomenon ("the computation was
    /// performed on two nodes while the remaining four were idle")
    /// observed on the live thread pool.
    pub fn utilization_report(&self, workers: usize) -> typefuse_obs::UtilizationReport {
        typefuse_obs::UtilizationReport::from_stage(&self.stage_report(""), workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(partition: usize, millis: u64) -> TaskMetrics {
        TaskMetrics {
            partition,
            worker: partition % 2,
            duration: Duration::from_millis(millis),
            queue_wait: Duration::from_millis(millis / 10),
        }
    }

    #[test]
    fn totals_and_max() {
        let m = StageMetrics::new(
            vec![task(1, 30), task(0, 10), task(2, 20)],
            Duration::from_millis(35),
        );
        assert_eq!(m.tasks[0].partition, 0, "sorted by partition");
        assert_eq!(m.total_task_time(), Duration::from_millis(60));
        assert_eq!(m.max_task_time(), Duration::from_millis(30));
        let p = m.effective_parallelism();
        assert!((p - 60.0 / 35.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stage() {
        let m = StageMetrics::default();
        assert_eq!(m.total_task_time(), Duration::ZERO);
        assert_eq!(m.max_task_time(), Duration::ZERO);
        assert_eq!(m.effective_parallelism(), 1.0);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = StageMetrics::new(vec![task(0, 5)], Duration::from_millis(5));
        let b = StageMetrics::new(vec![task(1, 7)], Duration::from_millis(7));
        a.merge(&b);
        assert_eq!(a.tasks.len(), 2);
        assert_eq!(a.wall, Duration::from_millis(12));
    }

    /// Regression test pinning the documented sequential-stage merge
    /// semantics: `wall` is additive, so merging N stages reports the
    /// sum of their walls — an overstatement for concurrent stages,
    /// which must be reported separately instead of merged.
    #[test]
    fn merge_wall_is_sequential_sum_not_max() {
        let mut a = StageMetrics::new(vec![task(0, 10)], Duration::from_millis(10));
        let b = StageMetrics::new(vec![task(1, 10)], Duration::from_millis(10));
        a.merge(&b);
        assert_eq!(
            a.wall,
            Duration::from_millis(20),
            "merge must keep summing walls (sequential-stage semantics); \
             if this changed, update the merge docs and every caller \
             that reports merged walls"
        );
        assert_ne!(a.wall, Duration::from_millis(10), "not max-semantics");
    }

    #[test]
    fn stage_report_preserves_queue_wait_and_execute_split() {
        let m = StageMetrics::new(vec![task(1, 30), task(0, 10)], Duration::from_millis(35));
        let report = m.stage_report("map");
        assert_eq!(report.name, "map");
        assert_eq!(report.wall_ns, 35_000_000);
        assert_eq!(report.tasks.len(), 2);
        assert_eq!(report.tasks[0].partition, 0);
        assert_eq!(report.tasks[0].execute_ns, 10_000_000);
        assert_eq!(report.tasks[0].queue_wait_ns, 1_000_000);
        assert_eq!(report.tasks[1].partition, 1);
        assert_eq!(report.tasks[1].queue_wait_ns, 3_000_000);
        assert_eq!(report.tasks[0].worker, 0);
        assert_eq!(report.tasks[1].worker, 1);
        assert_eq!(
            m.total_queue_wait(),
            Duration::from_millis(4),
            "1ms + 3ms of queue wait"
        );
    }

    #[test]
    fn utilization_report_groups_by_worker_and_keeps_idle_workers() {
        // Tasks 0 and 2 ran on worker 0, task 1 on worker 1; a 4-worker
        // runtime leaves workers 2 and 3 idle.
        let m = StageMetrics::new(
            vec![task(0, 10), task(1, 30), task(2, 20)],
            Duration::from_millis(40),
        );
        let u = m.utilization_report(4);
        assert_eq!(u.wall_ns, 40_000_000);
        assert_eq!(u.workers.len(), 4);
        assert_eq!(u.workers[0].busy_ns, 30_000_000, "10ms + 20ms");
        assert_eq!(u.workers[0].tasks, 2);
        assert_eq!(u.workers[1].busy_ns, 30_000_000);
        assert_eq!(u.workers[2].busy_ns, 0, "idle worker still listed");
        assert_eq!(u.workers[3].tasks, 0);
        assert_eq!(u.busy_workers(), 2);
        assert_eq!(u.idle_workers(), 2);
        // 60ms of work over 4 workers x 40ms of wall.
        assert!((u.utilization() - 60.0 / 160.0).abs() < 1e-9);
    }
}
