//! Per-task and per-stage execution metrics.
//!
//! The paper reports per-partition object counts, distinct-type counts and
//! processing times (Table 8); these structures carry the raw measurements
//! out of the engine so the bench harness can print such rows.

use std::time::Duration;

/// Timing for one task (one partition of one stage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskMetrics {
    /// Index of the partition the task processed.
    pub partition: usize,
    /// Wall-clock time the task spent executing.
    pub duration: Duration,
}

/// Aggregated metrics for one parallel stage.
#[derive(Debug, Clone, Default)]
pub struct StageMetrics {
    /// One entry per task, in partition order.
    pub tasks: Vec<TaskMetrics>,
    /// Wall-clock time of the whole stage (queueing + execution).
    pub wall: Duration,
}

impl StageMetrics {
    /// Build from task entries and the stage wall time.
    pub fn new(mut tasks: Vec<TaskMetrics>, wall: Duration) -> Self {
        tasks.sort_by_key(|t| t.partition);
        StageMetrics { tasks, wall }
    }

    /// Sum of per-task durations (total CPU-side work).
    pub fn total_task_time(&self) -> Duration {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// The longest task — the straggler that bounds the stage.
    pub fn max_task_time(&self) -> Duration {
        self.tasks
            .iter()
            .map(|t| t.duration)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Parallel speedup actually achieved: total task time / wall time.
    /// 1.0 means fully sequential; `workers` means perfect scaling.
    pub fn effective_parallelism(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            return 1.0;
        }
        self.total_task_time().as_secs_f64() / wall
    }

    /// Merge another stage's metrics into this one (multi-stage
    /// pipelines). Partition indices are kept as-is.
    pub fn merge(&mut self, other: &StageMetrics) {
        self.tasks.extend(other.tasks.iter().cloned());
        self.wall += other.wall;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(partition: usize, millis: u64) -> TaskMetrics {
        TaskMetrics {
            partition,
            duration: Duration::from_millis(millis),
        }
    }

    #[test]
    fn totals_and_max() {
        let m = StageMetrics::new(
            vec![task(1, 30), task(0, 10), task(2, 20)],
            Duration::from_millis(35),
        );
        assert_eq!(m.tasks[0].partition, 0, "sorted by partition");
        assert_eq!(m.total_task_time(), Duration::from_millis(60));
        assert_eq!(m.max_task_time(), Duration::from_millis(30));
        let p = m.effective_parallelism();
        assert!((p - 60.0 / 35.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stage() {
        let m = StageMetrics::default();
        assert_eq!(m.total_task_time(), Duration::ZERO);
        assert_eq!(m.max_task_time(), Duration::ZERO);
        assert_eq!(m.effective_parallelism(), 1.0);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = StageMetrics::new(vec![task(0, 5)], Duration::from_millis(5));
        let b = StageMetrics::new(vec![task(1, 7)], Duration::from_millis(7));
        a.merge(&b);
        assert_eq!(a.tasks.len(), 2);
        assert_eq!(a.wall, Duration::from_millis(12));
    }
}
