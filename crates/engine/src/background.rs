//! Background task scheduling for resident services.
//!
//! The batch half of the engine ([`Runtime`](crate::Runtime)) runs a
//! job to completion and tears down. A resident service instead needs
//! *periodic* work — poll a tailed source, fold the new records, check
//! for drift — running until told to stop. [`spawn_periodic`] provides
//! that: a named worker thread driving a tick closure on an interval,
//! with the same panic-isolation discipline as the batch workers (a
//! panicking tick is caught, counted, and does not take the process or
//! the other sources down).

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use typefuse_obs::Recorder;

/// What a tick tells the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tick {
    /// Keep ticking.
    Continue,
    /// This task is done; stop its loop (the shared stop flag is left
    /// alone, so sibling tasks keep running).
    Stop,
}

/// A handle to a background periodic task.
#[derive(Debug)]
pub struct BackgroundTask {
    name: String,
    /// Private to this task — stopping one task never stops siblings
    /// sharing the same group flag.
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl BackgroundTask {
    /// The task's name (used in panic counters and thread names).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ask the task to stop after its current tick.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Stop and wait for the worker thread to exit.
    pub fn join(mut self) {
        self.stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for BackgroundTask {
    fn drop(&mut self) {
        self.stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Run `tick` every `interval` on a dedicated thread until the group
/// `stop` flag (shared by all of a service's tasks) or the returned
/// handle says stop, or the closure returns [`Tick::Stop`].
///
/// Each tick runs under `catch_unwind`: a panic is recorded as
/// `background.panics` (and `background.panics.<name>`) on `rec` and
/// the loop continues with the next tick — one poisoned poll of one
/// source must not kill a daemon. The stop flags are checked before
/// every tick and the sleep is sliced so shutdown latency stays well
/// under `interval` even for slow polls.
pub fn spawn_periodic<F>(
    name: &str,
    interval: Duration,
    stop: Arc<AtomicBool>,
    rec: Recorder,
    mut tick: F,
) -> BackgroundTask
where
    F: FnMut() -> Tick + Send + 'static,
{
    let own_stop = Arc::new(AtomicBool::new(false));
    let loop_own = Arc::clone(&own_stop);
    let loop_name = name.to_string();
    let handle = std::thread::Builder::new()
        .name(format!("bg-{name}"))
        .spawn(move || {
            let stopped = || stop.load(Ordering::Acquire) || loop_own.load(Ordering::Acquire);
            while !stopped() {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(&mut tick));
                match outcome {
                    Ok(Tick::Continue) => {}
                    Ok(Tick::Stop) => break,
                    Err(_) => {
                        rec.add("background.panics", 1);
                        rec.add(&format!("background.panics.{loop_name}"), 1);
                    }
                }
                // Sleep in small slices so a stop request interrupts
                // the wait promptly.
                let mut remaining = interval;
                let slice = Duration::from_millis(5);
                while !remaining.is_zero() && !stopped() {
                    let nap = remaining.min(slice);
                    std::thread::sleep(nap);
                    remaining = remaining.saturating_sub(nap);
                }
            }
        })
        .expect("spawn background thread");
    BackgroundTask {
        name: name.to_string(),
        stop: own_stop,
        handle: Some(handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ticks_until_stopped() {
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let task = spawn_periodic(
            "ticker",
            Duration::from_millis(1),
            Arc::new(AtomicBool::new(false)),
            Recorder::disabled(),
            move || {
                c.fetch_add(1, Ordering::SeqCst);
                Tick::Continue
            },
        );
        while count.load(Ordering::SeqCst) < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(task.name(), "ticker");
        task.join();
        let settled = count.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(count.load(Ordering::SeqCst), settled, "no ticks after join");
    }

    #[test]
    fn tick_stop_ends_only_this_task() {
        let stop = Arc::new(AtomicBool::new(false));
        let task = spawn_periodic(
            "oneshot",
            Duration::from_millis(1),
            Arc::clone(&stop),
            Recorder::disabled(),
            || Tick::Stop,
        );
        task.join();
        assert!(!stop.load(Ordering::SeqCst), "shared flag untouched");
    }

    #[test]
    fn panics_are_isolated_and_counted() {
        let rec = Recorder::enabled();
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let task = spawn_periodic(
            "flaky",
            Duration::from_millis(1),
            Arc::new(AtomicBool::new(false)),
            rec.clone(),
            move || {
                let n = c.fetch_add(1, Ordering::SeqCst);
                if n == 0 {
                    panic!("first tick dies");
                }
                Tick::Continue
            },
        );
        while count.load(Ordering::SeqCst) < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        task.join();
        assert_eq!(rec.counter_value("background.panics"), 1);
        assert_eq!(rec.counter_value("background.panics.flaky"), 1);
    }

    #[test]
    fn shared_stop_flag_stops_the_task() {
        let stop = Arc::new(AtomicBool::new(false));
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let task = spawn_periodic(
            "shared",
            Duration::from_millis(1),
            Arc::clone(&stop),
            Recorder::disabled(),
            move || {
                c.fetch_add(1, Ordering::SeqCst);
                Tick::Continue
            },
        );
        while count.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Release);
        task.join();
    }
}
