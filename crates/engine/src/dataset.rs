//! Partitioned in-memory datasets — the RDD analogue.
//!
//! A [`Dataset<T>`] is a list of partitions, each a `Vec<T>`. Operations
//! mirror the Spark API surface the paper's implementation uses:
//! `map`, `mapPartitions`, `reduce`, `aggregate`, `count`, `collect`,
//! `repartition`. Transformations execute eagerly on a [`Runtime`]
//! (the paper's pipeline is a single map + single reduce, so laziness
//! would buy nothing but complexity).

use crate::metrics::StageMetrics;
use crate::reduce::ReducePlan;
use crate::runtime::Runtime;

/// A partitioned collection of `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset<T> {
    partitions: Vec<Vec<T>>,
}

impl<T> Dataset<T> {
    /// Build from explicit partitions (empty partitions are kept: Spark
    /// does the same, and they exercise the `ε` identity of fusion).
    pub fn from_partitions(partitions: Vec<Vec<T>>) -> Self {
        Dataset { partitions }
    }

    /// Distribute `items` over `num_partitions` contiguous chunks (min 1),
    /// like Spark's `parallelize`: concatenating the partitions in order
    /// reproduces the input order, so `reduce` with any *associative*
    /// operator (commutative or not) matches the sequential fold.
    pub fn from_vec(items: Vec<T>, num_partitions: usize) -> Self {
        let n = num_partitions.max(1);
        let len = items.len();
        let base = len / n;
        let rem = len % n;
        let mut partitions: Vec<Vec<T>> = Vec::with_capacity(n);
        let mut iter = items.into_iter();
        for p in 0..n {
            let take = base + usize::from(p < rem);
            partitions.push(iter.by_ref().take(take).collect());
        }
        Dataset { partitions }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of items.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Items per partition.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.partitions.iter().map(Vec::len).collect()
    }

    /// Borrow the partitions.
    pub fn partitions(&self) -> &[Vec<T>] {
        &self.partitions
    }

    /// Flatten into a single `Vec`, partition by partition.
    pub fn collect(self) -> Vec<T> {
        self.partitions.into_iter().flatten().collect()
    }

    /// Iterate over all items, partition by partition.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.partitions.iter().flatten()
    }

    /// Re-distribute into `num_partitions` contiguous partitions.
    pub fn repartition(self, num_partitions: usize) -> Self {
        Dataset::from_vec(self.collect(), num_partitions)
    }
}

impl<T: Send + Sync> Dataset<T> {
    /// Parallel element-wise map.
    pub fn map<U, F>(&self, rt: &Runtime, f: F) -> Dataset<U>
    where
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.map_metered(rt, f).0
    }

    /// Parallel map, returning per-partition metrics.
    pub fn map_metered<U, F>(&self, rt: &Runtime, f: F) -> (Dataset<U>, StageMetrics)
    where
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let (parts, metrics) = rt.run_indexed(&self.partitions, |_, part: &Vec<T>| {
            part.iter().map(&f).collect::<Vec<U>>()
        });
        (Dataset::from_partitions(parts), metrics)
    }

    /// [`Dataset::map_metered`] with panic isolation: a panic in `f`
    /// surfaces as a [`crate::runtime::WorkerPanic`] instead of aborting
    /// the process.
    pub fn try_map_metered<U, F>(
        &self,
        rt: &Runtime,
        f: F,
    ) -> (
        Result<Dataset<U>, crate::runtime::WorkerPanic>,
        StageMetrics,
    )
    where
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let (parts, metrics) = rt.try_run_indexed(&self.partitions, |_, part: &Vec<T>| {
            part.iter().map(&f).collect::<Vec<U>>()
        });
        (parts.map(Dataset::from_partitions), metrics)
    }

    /// Parallel filter: keep items satisfying the predicate, preserving
    /// partitioning.
    pub fn filter<F>(&self, rt: &Runtime, f: F) -> Dataset<T>
    where
        T: Clone,
        F: Fn(&T) -> bool + Sync,
    {
        let (parts, _) = rt.run_indexed(&self.partitions, |_, part: &Vec<T>| {
            part.iter()
                .filter(|item| f(item))
                .cloned()
                .collect::<Vec<T>>()
        });
        Dataset::from_partitions(parts)
    }

    /// Parallel flat-map: each item expands to zero or more outputs.
    pub fn flat_map<U, I, F>(&self, rt: &Runtime, f: F) -> Dataset<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(&T) -> I + Sync,
    {
        let (parts, _) = rt.run_indexed(&self.partitions, |_, part: &Vec<T>| {
            part.iter().flat_map(&f).collect::<Vec<U>>()
        });
        Dataset::from_partitions(parts)
    }

    /// Parallel whole-partition map (Spark `mapPartitions`): `f` sees the
    /// partition index and its items.
    pub fn map_partitions<U, F>(&self, rt: &Runtime, f: F) -> Dataset<U>
    where
        U: Send,
        F: Fn(usize, &[T]) -> Vec<U> + Sync,
    {
        let (parts, _) = rt.run_indexed(&self.partitions, |i, part: &Vec<T>| f(i, part));
        Dataset::from_partitions(parts)
    }

    /// [`Dataset::map_partitions`] with panic isolation and per-partition
    /// metrics — the whole-partition analogue of
    /// [`Dataset::try_map_metered`]. Used by map routes that carry
    /// partition-local state (e.g. the shape-signature cache), which an
    /// element-wise closure cannot hold.
    pub fn try_map_partitions_metered<U, F>(
        &self,
        rt: &Runtime,
        f: F,
    ) -> (
        Result<Dataset<U>, crate::runtime::WorkerPanic>,
        StageMetrics,
    )
    where
        U: Send,
        F: Fn(usize, &[T]) -> Vec<U> + Sync,
    {
        let (parts, metrics) = rt.try_run_indexed(&self.partitions, |i, part: &Vec<T>| f(i, part));
        (parts.map(Dataset::from_partitions), metrics)
    }

    /// Parallel reduce with an associative operator: partition-local
    /// folds, then combination according to `plan`. `None` if the dataset
    /// is empty.
    pub fn reduce<F>(&self, rt: &Runtime, plan: ReducePlan, op: F) -> Option<T>
    where
        T: Clone,
        F: Fn(&T, &T) -> T + Sync,
    {
        self.reduce_metered(rt, plan, op).0
    }

    /// [`Dataset::reduce`] with per-partition metrics for the local-fold
    /// stage.
    pub fn reduce_metered<F>(
        &self,
        rt: &Runtime,
        plan: ReducePlan,
        op: F,
    ) -> (Option<T>, StageMetrics)
    where
        T: Clone,
        F: Fn(&T, &T) -> T + Sync,
    {
        self.reduce_recorded(rt, plan, op, &typefuse_obs::Recorder::disabled())
    }

    /// [`Dataset::reduce_metered`] with observability: the per-level
    /// combine spans and fan-in histogram of
    /// [`ReducePlan::combine_recorded`]. A disabled recorder makes this
    /// identical to `reduce_metered`.
    pub fn reduce_recorded<F>(
        &self,
        rt: &Runtime,
        plan: ReducePlan,
        op: F,
        rec: &typefuse_obs::Recorder,
    ) -> (Option<T>, StageMetrics)
    where
        T: Clone,
        F: Fn(&T, &T) -> T + Sync,
    {
        let (partials, metrics) = rt.run_indexed(&self.partitions, |_, part: &Vec<T>| {
            let mut iter = part.iter();
            let first = iter.next()?;
            let mut acc = first.clone();
            for item in iter {
                acc = op(&acc, item);
            }
            Some(acc)
        });
        let partials: Vec<T> = partials.into_iter().flatten().collect();
        (plan.combine_recorded(rt, partials, op, rec), metrics)
    }

    /// Spark-style `aggregate`: fold each partition from `zero()` with
    /// `seq`, then combine the partials with `comb` under `plan`.
    pub fn aggregate<A, Z, S, C>(
        &self,
        rt: &Runtime,
        plan: ReducePlan,
        zero: Z,
        seq: S,
        comb: C,
    ) -> A
    where
        A: Send + Sync + Clone,
        Z: Fn() -> A + Sync,
        S: Fn(A, &T) -> A + Sync,
        C: Fn(&A, &A) -> A + Sync,
    {
        let (partials, _) = rt.run_indexed(&self.partitions, |_, part: &Vec<T>| {
            part.iter().fold(zero(), &seq)
        });
        plan.combine(rt, partials, comb).unwrap_or_else(zero)
    }
}

impl<T> FromIterator<T> for Dataset<T> {
    /// Collect into a single-partition dataset.
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Dataset::from_partitions(vec![iter.into_iter().collect()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> Runtime {
        Runtime::new(4)
    }

    #[test]
    fn from_vec_contiguous_chunks() {
        let d = Dataset::from_vec((0..10).collect(), 3);
        assert_eq!(d.num_partitions(), 3);
        assert_eq!(d.partition_sizes(), vec![4, 3, 3]);
        assert_eq!(d.count(), 10);
        // Concatenated partitions reproduce the input order.
        assert_eq!(d.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_matches_sequential_fold_for_noncommutative_ops() {
        let parts: Vec<String> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let d = Dataset::from_vec(parts.clone(), 2);
        let reduced = d.reduce(&rt(), ReducePlan::default(), |a, b| format!("{a}{b}"));
        assert_eq!(reduced.as_deref(), Some("abcde"));
    }

    #[test]
    fn zero_partitions_clamped() {
        let d = Dataset::from_vec(vec![1, 2], 0);
        assert_eq!(d.num_partitions(), 1);
    }

    #[test]
    fn map_preserves_partitioning() {
        let d = Dataset::from_vec((0..10).collect::<Vec<i64>>(), 4);
        let m = d.map(&rt(), |&x| x * 10);
        assert_eq!(m.num_partitions(), 4);
        assert_eq!(m.partition_sizes(), d.partition_sizes());
        let mut all = m.collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn filter_preserves_partitioning() {
        let d = Dataset::from_vec((0..20).collect::<Vec<i32>>(), 4);
        let f = d.filter(&rt(), |&x| x % 2 == 0);
        assert_eq!(f.num_partitions(), 4);
        assert_eq!(f.count(), 10);
        assert!(f.iter().all(|&x| x % 2 == 0));
    }

    #[test]
    fn flat_map_expands_and_drops() {
        let d = Dataset::from_vec(vec![1usize, 0, 3], 2);
        let m = d.flat_map(&rt(), |&n| vec![n; n]);
        let mut all = m.collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 3, 3, 3]);
    }

    #[test]
    fn map_partitions_sees_indices() {
        let d = Dataset::from_partitions(vec![vec![1], vec![2, 3]]);
        let m = d.map_partitions(&rt(), |i, part| vec![(i, part.len())]);
        assert_eq!(m.collect(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn reduce_sums() {
        let d = Dataset::from_vec((1..=100).collect::<Vec<u64>>(), 7);
        for plan in [ReducePlan::Sequential, ReducePlan::Tree { arity: 3 }] {
            assert_eq!(d.reduce(&rt(), plan, |a, b| a + b), Some(5050));
        }
    }

    #[test]
    fn reduce_empty_dataset() {
        let d: Dataset<u32> = Dataset::from_partitions(vec![]);
        assert_eq!(d.reduce(&rt(), ReducePlan::default(), |a, b| a + b), None);
    }

    #[test]
    fn reduce_skips_empty_partitions() {
        let d = Dataset::from_partitions(vec![vec![], vec![5u32], vec![], vec![7]]);
        assert_eq!(
            d.reduce(&rt(), ReducePlan::default(), |a, b| a + b),
            Some(12)
        );
    }

    #[test]
    fn aggregate_counts_lengths() {
        let d = Dataset::from_vec(vec!["a", "bb", "ccc"], 2);
        let total = d.aggregate(
            &rt(),
            ReducePlan::default(),
            || 0usize,
            |acc, s| acc + s.len(),
            |a, b| a + b,
        );
        assert_eq!(total, 6);
    }

    #[test]
    fn aggregate_empty_returns_zero() {
        let d: Dataset<&str> = Dataset::from_partitions(vec![vec![], vec![]]);
        let total = d.aggregate(
            &rt(),
            ReducePlan::default(),
            || 42usize,
            |acc, s| acc + s.len(),
            |a, b| a + b,
        );
        // Two empty partitions each contribute zero() = 42; combined 84.
        assert_eq!(total, 84);
    }

    #[test]
    fn repartition_preserves_multiset() {
        let d = Dataset::from_vec((0..17).collect::<Vec<i32>>(), 5);
        let r = d.clone().repartition(2);
        assert_eq!(r.num_partitions(), 2);
        let mut a = d.collect();
        let mut b = r.collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn metered_map_reports_all_partitions() {
        let d = Dataset::from_vec((0..100).collect::<Vec<i32>>(), 8);
        let (_, metrics) = d.map_metered(&rt(), |&x| x + 1);
        assert_eq!(metrics.tasks.len(), 8);
    }

    #[test]
    fn from_iterator_single_partition() {
        let d: Dataset<i32> = (0..5).collect();
        assert_eq!(d.num_partitions(), 1);
        assert_eq!(d.count(), 5);
    }
}
