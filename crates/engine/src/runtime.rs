//! The thread-pool runtime: a fixed set of workers fed from a shared
//! index queue.
//!
//! Each parallel operation runs inside [`std::thread::scope`], so task
//! closures may borrow the caller's data — no `Arc` plumbing, no
//! `'static` bounds, no unsafe. The queue is a `crossbeam_channel`
//! multi-consumer channel: workers pull partition indices until it
//! drains, which gives natural load balancing when partitions are
//! skewed (the NYTimes profile produces very uneven record sizes).

use crossbeam_channel::unbounded;
use parking_lot::Mutex;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crate::metrics::{StageMetrics, TaskMetrics};

/// A task closure panicked on a worker thread.
///
/// Returned by [`Runtime::try_run_indexed`] so that one poisoned record
/// or a bug in a map closure surfaces as an error value instead of
/// tearing down the whole process. When several tasks panic in the same
/// stage, the one with the lowest partition index is reported (results
/// are deterministic across worker counts) and `panics` carries the
/// total count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Partition index of the reported (lowest-index) panicking task.
    pub partition: usize,
    /// The panic payload, rendered to a string.
    pub message: String,
    /// Total number of tasks that panicked in this stage.
    pub panics: usize,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked on partition {}: {}",
            self.partition, self.message
        )?;
        if self.panics > 1 {
            write!(f, " ({} tasks panicked in total)", self.panics)?;
        }
        Ok(())
    }
}

impl std::error::Error for WorkerPanic {}

/// Render a caught panic payload as a string.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A parallel execution context with a fixed worker count.
#[derive(Debug, Clone)]
pub struct Runtime {
    workers: usize,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new(available_workers())
    }
}

/// Number of workers used by [`Runtime::default`]: the machine's
/// available parallelism, or 1 if it cannot be determined.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

impl Runtime {
    /// A runtime with exactly `workers` worker threads (minimum 1).
    pub fn new(workers: usize) -> Self {
        Runtime {
            workers: workers.max(1),
        }
    }

    /// A single-threaded runtime, for baselines and deterministic tests.
    pub fn sequential() -> Self {
        Runtime { workers: 1 }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `task(i, &items[i])` for every index in parallel and collect
    /// the results in input order, together with per-task metrics.
    ///
    /// `task` is shared by all workers, hence `Fn + Sync`. A panicking
    /// task re-raises the panic on the caller's thread; use
    /// [`try_run_indexed`](Runtime::try_run_indexed) to get it as an
    /// error value instead.
    pub fn run_indexed<T, R, F>(&self, items: &[T], task: F) -> (Vec<R>, StageMetrics)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let (result, metrics) = self.try_run_indexed(items, task);
        match result {
            Ok(out) => (out, metrics),
            Err(p) => panic!("{p}"),
        }
    }

    /// Like [`run_indexed`](Runtime::run_indexed), but with panic
    /// isolation: each task runs under [`std::panic::catch_unwind`], so
    /// a poisoned task surfaces as [`WorkerPanic`] instead of aborting
    /// the process. All remaining tasks still run to completion (the
    /// worker drain loop is not cut short), the panic on the lowest
    /// partition index wins, and metrics cover every task.
    pub fn try_run_indexed<T, R, F>(
        &self,
        items: &[T],
        task: F,
    ) -> (Result<Vec<R>, WorkerPanic>, StageMetrics)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let stage_start = Instant::now();
        let n = items.len();
        let mut task_metrics: Vec<TaskMetrics> = Vec::new();
        let caught = |i: usize| -> Result<R, String> {
            catch_unwind(AssertUnwindSafe(|| task(i, &items[i]))).map_err(panic_message)
        };

        if n == 0 {
            return (
                Ok(Vec::new()),
                StageMetrics::new(Vec::new(), stage_start.elapsed()),
            );
        }

        let outcomes: Vec<Result<R, String>> = if self.workers == 1 || n == 1 {
            // Fast path: no threads, no channels.
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let t0 = Instant::now();
                out.push(caught(i));
                task_metrics.push(TaskMetrics {
                    partition: i,
                    worker: 0,
                    duration: t0.elapsed(),
                    // Conceptually every task is submitted at stage
                    // start, so a sequential task "waits" behind its
                    // predecessors.
                    queue_wait: t0.saturating_duration_since(stage_start),
                });
            }
            out
        } else {
            let (tx, rx) = unbounded::<usize>();
            for i in 0..n {
                tx.send(i).expect("queue is open");
            }
            drop(tx);

            // (outcome, worker id, execute duration, queue wait) for one
            // task.
            type TaskSlot<R> = Mutex<(Option<Result<R, String>>, usize, Duration, Duration)>;
            let slots: Vec<TaskSlot<R>> = (0..n)
                .map(|_| Mutex::new((None, 0, Duration::ZERO, Duration::ZERO)))
                .collect();

            std::thread::scope(|scope| {
                for worker in 0..self.workers.min(n) {
                    let rx = rx.clone();
                    let slots = &slots;
                    let caught = &caught;
                    scope.spawn(move || {
                        while let Ok(i) = rx.recv() {
                            // All indices were enqueued at stage start, so
                            // pickup time *is* this task's queue wait.
                            let t0 = Instant::now();
                            let queue_wait = t0.saturating_duration_since(stage_start);
                            let r = caught(i);
                            *slots[i].lock() = (Some(r), worker, t0.elapsed(), queue_wait);
                        }
                    });
                }
            });

            let mut out = Vec::with_capacity(n);
            for (i, slot) in slots.into_iter().enumerate() {
                let (r, worker, duration, queue_wait) = slot.into_inner();
                out.push(r.expect("every task ran to completion"));
                task_metrics.push(TaskMetrics {
                    partition: i,
                    worker,
                    duration,
                    queue_wait,
                });
            }
            out
        };

        let metrics = StageMetrics::new(task_metrics, stage_start.elapsed());
        let panics = outcomes.iter().filter(|r| r.is_err()).count();
        let mut results = Vec::with_capacity(n);
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(r) => results.push(r),
                Err(message) => {
                    return (
                        Err(WorkerPanic {
                            partition: i,
                            message,
                            panics,
                        }),
                        metrics,
                    );
                }
            }
        }
        (Ok(results), metrics)
    }

    /// Run a plain parallel map over the items, discarding metrics.
    pub fn map_slice<T, R, F>(&self, items: &[T], task: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.run_indexed(items, |_, item| task(item)).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_input_order() {
        let rt = Runtime::new(4);
        let items: Vec<usize> = (0..100).collect();
        let (out, _) = rt.run_indexed(&items, |_, &x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let rt = Runtime::new(8);
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let (out, metrics) = rt.run_indexed(&items, |i, _| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
        assert_eq!(metrics.tasks.len(), 1000);
    }

    #[test]
    fn sequential_runtime_has_one_worker() {
        assert_eq!(Runtime::sequential().workers(), 1);
        assert_eq!(Runtime::new(0).workers(), 1, "clamped to 1");
    }

    #[test]
    fn empty_input() {
        let rt = Runtime::new(4);
        let (out, metrics) = rt.run_indexed(&Vec::<u8>::new(), |_, &x| x);
        assert!(out.is_empty());
        assert!(metrics.tasks.is_empty());
    }

    #[test]
    fn tasks_can_borrow_caller_state() {
        let rt = Runtime::new(3);
        let shared = [10, 20, 30];
        let items = vec![0usize, 1, 2];
        let (out, _) = rt.run_indexed(&items, |_, &i| shared[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let items: Vec<u64> = (0..500).collect();
        let seq = Runtime::sequential().map_slice(&items, |&x| x * x);
        let par = Runtime::new(7).map_slice(&items, |&x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn metrics_cover_all_partitions() {
        let rt = Runtime::new(4);
        let items = vec![1u32; 16];
        let (_, metrics) = rt.run_indexed(&items, |_, &x| x);
        let mut parts: Vec<usize> = metrics.tasks.iter().map(|t| t.partition).collect();
        parts.sort_unstable();
        assert_eq!(parts, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn worker_ids_are_within_pool_and_cover_each_task() {
        // Sequential path: everything on worker 0.
        let items = vec![1u32; 8];
        let (_, m) = Runtime::sequential().run_indexed(&items, |_, &x| x);
        assert!(m.tasks.iter().all(|t| t.worker == 0));
        // Parallel path: ids stay within the pool, and with more slow
        // tasks than workers every id shows up under contention.
        let rt = Runtime::new(3);
        let many = vec![1u32; 64];
        let (_, m) = rt.run_indexed(&many, |_, &x| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            x
        });
        assert_eq!(m.tasks.len(), 64);
        assert!(m.tasks.iter().all(|t| t.worker < 3));
        let used: std::collections::HashSet<usize> = m.tasks.iter().map(|t| t.worker).collect();
        assert!(!used.is_empty());
    }

    #[test]
    fn default_uses_available_parallelism() {
        assert_eq!(Runtime::default().workers(), available_workers());
        assert!(available_workers() >= 1);
    }

    #[test]
    fn try_run_indexed_succeeds_like_run_indexed() {
        for workers in [1, 4] {
            let rt = Runtime::new(workers);
            let items: Vec<usize> = (0..50).collect();
            let (out, metrics) = rt.try_run_indexed(&items, |_, &x| x + 1);
            assert_eq!(out.unwrap(), (1..=50).collect::<Vec<_>>());
            assert_eq!(metrics.tasks.len(), 50);
        }
    }

    #[test]
    fn panic_is_isolated_and_lowest_partition_wins() {
        for workers in [1, 4] {
            let rt = Runtime::new(workers);
            let done = AtomicUsize::new(0);
            let items: Vec<usize> = (0..20).collect();
            let (result, metrics) = rt.try_run_indexed(&items, |i, &x| {
                if i == 7 || i == 13 {
                    panic!("poisoned record {i}");
                }
                done.fetch_add(1, Ordering::Relaxed);
                x
            });
            let p = result.unwrap_err();
            assert_eq!(p.partition, 7, "workers={workers}");
            assert_eq!(p.panics, 2);
            assert!(p.message.contains("poisoned record 7"));
            assert!(p.to_string().contains("partition 7"));
            assert!(p.to_string().contains("2 tasks"));
            // The drain loop is not cut short: every healthy task ran.
            assert_eq!(done.load(Ordering::Relaxed), 18);
            assert_eq!(metrics.tasks.len(), 20);
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked on partition 0")]
    fn run_indexed_reraises_the_panic() {
        let rt = Runtime::new(2);
        let items = vec![1u32, 2];
        rt.run_indexed(&items, |_, _| -> u32 { panic!("boom") });
    }
}
