//! The thread-pool runtime: a fixed set of workers fed from a shared
//! index queue.
//!
//! Each parallel operation runs inside [`std::thread::scope`], so task
//! closures may borrow the caller's data — no `Arc` plumbing, no
//! `'static` bounds, no unsafe. The queue is a `crossbeam_channel`
//! multi-consumer channel: workers pull partition indices until it
//! drains, which gives natural load balancing when partitions are
//! skewed (the NYTimes profile produces very uneven record sizes).

use crossbeam_channel::unbounded;
use parking_lot::Mutex;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

use crate::metrics::{StageMetrics, TaskMetrics};

/// A parallel execution context with a fixed worker count.
#[derive(Debug, Clone)]
pub struct Runtime {
    workers: usize,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new(available_workers())
    }
}

/// Number of workers used by [`Runtime::default`]: the machine's
/// available parallelism, or 1 if it cannot be determined.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

impl Runtime {
    /// A runtime with exactly `workers` worker threads (minimum 1).
    pub fn new(workers: usize) -> Self {
        Runtime {
            workers: workers.max(1),
        }
    }

    /// A single-threaded runtime, for baselines and deterministic tests.
    pub fn sequential() -> Self {
        Runtime { workers: 1 }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `task(i, &items[i])` for every index in parallel and collect
    /// the results in input order, together with per-task metrics.
    ///
    /// `task` is shared by all workers, hence `Fn + Sync`.
    pub fn run_indexed<T, R, F>(&self, items: &[T], task: F) -> (Vec<R>, StageMetrics)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let stage_start = Instant::now();
        let n = items.len();
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let mut task_metrics: Vec<TaskMetrics> = Vec::new();

        if n == 0 {
            return (
                Vec::new(),
                StageMetrics::new(Vec::new(), stage_start.elapsed()),
            );
        }

        if self.workers == 1 || n == 1 {
            // Fast path: no threads, no channels.
            let mut out = Vec::with_capacity(n);
            for (i, item) in items.iter().enumerate() {
                let t0 = Instant::now();
                out.push(task(i, item));
                task_metrics.push(TaskMetrics {
                    partition: i,
                    duration: t0.elapsed(),
                    // Conceptually every task is submitted at stage
                    // start, so a sequential task "waits" behind its
                    // predecessors.
                    queue_wait: t0.saturating_duration_since(stage_start),
                });
            }
            return (out, StageMetrics::new(task_metrics, stage_start.elapsed()));
        }

        let (tx, rx) = unbounded::<usize>();
        for i in 0..n {
            tx.send(i).expect("queue is open");
        }
        drop(tx);

        let slots: Vec<Mutex<(Option<R>, Duration, Duration)>> = (0..n)
            .map(|_| Mutex::new((None, Duration::ZERO, Duration::ZERO)))
            .collect();

        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                let rx = rx.clone();
                let slots = &slots;
                let task = &task;
                scope.spawn(move || {
                    while let Ok(i) = rx.recv() {
                        // All indices were enqueued at stage start, so
                        // pickup time *is* this task's queue wait.
                        let t0 = Instant::now();
                        let queue_wait = t0.saturating_duration_since(stage_start);
                        let r = task(i, &items[i]);
                        *slots[i].lock() = (Some(r), t0.elapsed(), queue_wait);
                    }
                });
            }
        });

        for (i, slot) in slots.into_iter().enumerate() {
            let (r, duration, queue_wait) = slot.into_inner();
            results[i] = r;
            task_metrics.push(TaskMetrics {
                partition: i,
                duration,
                queue_wait,
            });
        }
        let out: Vec<R> = results
            .into_iter()
            .map(|r| r.expect("every task ran to completion"))
            .collect();
        (out, StageMetrics::new(task_metrics, stage_start.elapsed()))
    }

    /// Run a plain parallel map over the items, discarding metrics.
    pub fn map_slice<T, R, F>(&self, items: &[T], task: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.run_indexed(items, |_, item| task(item)).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_input_order() {
        let rt = Runtime::new(4);
        let items: Vec<usize> = (0..100).collect();
        let (out, _) = rt.run_indexed(&items, |_, &x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let rt = Runtime::new(8);
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let (out, metrics) = rt.run_indexed(&items, |i, _| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
        assert_eq!(metrics.tasks.len(), 1000);
    }

    #[test]
    fn sequential_runtime_has_one_worker() {
        assert_eq!(Runtime::sequential().workers(), 1);
        assert_eq!(Runtime::new(0).workers(), 1, "clamped to 1");
    }

    #[test]
    fn empty_input() {
        let rt = Runtime::new(4);
        let (out, metrics) = rt.run_indexed(&Vec::<u8>::new(), |_, &x| x);
        assert!(out.is_empty());
        assert!(metrics.tasks.is_empty());
    }

    #[test]
    fn tasks_can_borrow_caller_state() {
        let rt = Runtime::new(3);
        let shared = [10, 20, 30];
        let items = vec![0usize, 1, 2];
        let (out, _) = rt.run_indexed(&items, |_, &i| shared[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let items: Vec<u64> = (0..500).collect();
        let seq = Runtime::sequential().map_slice(&items, |&x| x * x);
        let par = Runtime::new(7).map_slice(&items, |&x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn metrics_cover_all_partitions() {
        let rt = Runtime::new(4);
        let items = vec![1u32; 16];
        let (_, metrics) = rt.run_indexed(&items, |_, &x| x);
        let mut parts: Vec<usize> = metrics.tasks.iter().map(|t| t.partition).collect();
        parts.sort_unstable();
        assert_eq!(parts, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn default_uses_available_parallelism() {
        assert_eq!(Runtime::default().workers(), available_workers());
        assert!(available_workers() >= 1);
    }
}
