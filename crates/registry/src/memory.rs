//! The resident (in-memory) registry backend.
//!
//! A long-running service that only needs drift detection within its
//! own lifetime — or a test that wants registry semantics without a
//! scratch file — uses [`MemoryRegistry`]: the same index, the same
//! compatibility gates, the same version/dedup semantics as the on-disk
//! [`Registry`](crate::Registry), with nothing persisted.

use crate::store::{
    CompatMode, Entry, Index, Prepared, PublishOutcome, RegistryError, RegistryStore,
};
use typefuse_types::diff::SchemaChange;
use typefuse_types::Type;

/// An in-memory [`RegistryStore`]: versions live only as long as the
/// process.
#[derive(Debug, Default)]
pub struct MemoryRegistry {
    index: Index,
}

impl MemoryRegistry {
    /// An empty in-memory registry.
    pub fn new() -> Self {
        MemoryRegistry::default()
    }
}

impl RegistryStore for MemoryRegistry {
    fn subject_names(&self) -> Vec<String> {
        self.index.names().into_iter().map(str::to_string).collect()
    }

    fn latest_entry(&self, name: &str) -> Option<Entry> {
        self.index.latest(name).cloned()
    }

    fn entry(&self, name: &str, version: u64) -> Option<Entry> {
        self.index.get(name, version).cloned()
    }

    fn entries(&self, name: &str) -> Result<Vec<Entry>, RegistryError> {
        self.index.history(name).map(<[Entry]>::to_vec)
    }

    fn changes(&self, name: &str, from: u64, to: u64) -> Result<Vec<SchemaChange>, RegistryError> {
        self.index.diff(name, from, to)
    }

    fn publish_schema(
        &mut self,
        name: &str,
        schema: &Type,
        mode: CompatMode,
    ) -> Result<PublishOutcome, RegistryError> {
        match self.index.prepare_publish(name, schema, mode)? {
            Prepared::Unchanged(version) => Ok(PublishOutcome {
                version,
                unchanged: true,
            }),
            Prepared::New(entry) => {
                let version = entry.version;
                self.index.commit(entry);
                Ok(PublishOutcome {
                    version,
                    unchanged: false,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typefuse_types::parse_type;

    fn t(text: &str) -> Type {
        parse_type(text).unwrap()
    }

    #[test]
    fn mirrors_on_disk_semantics() {
        let mut reg = MemoryRegistry::new();
        assert_eq!(
            reg.publish_schema("a", &t("{x: Num}"), CompatMode::Backward)
                .unwrap(),
            PublishOutcome {
                version: 1,
                unchanged: false
            }
        );
        // Equivalent republish dedups.
        assert!(
            reg.publish_schema("a", &t("{x: Num}"), CompatMode::Backward)
                .unwrap()
                .unchanged
        );
        // Widening passes the backward gate, narrowing does not.
        assert_eq!(
            reg.publish_schema("a", &t("{x: Num, y: Str?}"), CompatMode::Backward)
                .unwrap()
                .version,
            2
        );
        assert!(matches!(
            reg.publish_schema("a", &t("{x: Num}"), CompatMode::Backward),
            Err(RegistryError::Incompatible {
                against_version: 2,
                ..
            })
        ));
        assert_eq!(reg.latest_version("a"), Some(2));
        assert_eq!(reg.entries("a").unwrap().len(), 2);
        assert_eq!(reg.changes("a", 1, 2).unwrap().len(), 1);
        assert_eq!(reg.entry("a", 1).unwrap().schema, t("{x: Num}"));
        assert!(reg.entry("a", 9).is_none());
        assert!(matches!(
            reg.entries("zzz"),
            Err(RegistryError::NotFound { .. })
        ));
    }
}
