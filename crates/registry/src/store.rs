//! The registry stores: a shared index/gate core, the append-only
//! on-disk log, and the [`RegistryStore`] trait both backends (and the
//! in-memory [`MemoryRegistry`](crate::MemoryRegistry)) implement.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::OpenOptions;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use typefuse_json::{Map, Value};
use typefuse_types::diff::{diff, SchemaChange};
use typefuse_types::{is_subtype, parse_type, Type};

/// Compatibility gate applied at publish time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompatMode {
    /// New schema must admit all data of the previous one (`old <: new`).
    #[default]
    Backward,
    /// Previous schema must admit all data of the new one (`new <: old`).
    Forward,
    /// Both directions (schemas equivalent up to syntax).
    Full,
    /// No gate.
    None,
}

impl CompatMode {
    /// Parse the CLI-facing name.
    pub fn from_name(name: &str) -> Option<CompatMode> {
        match name.to_ascii_lowercase().as_str() {
            "backward" => Some(CompatMode::Backward),
            "forward" => Some(CompatMode::Forward),
            "full" => Some(CompatMode::Full),
            "none" => Some(CompatMode::None),
            _ => None,
        }
    }

    fn allows(self, old: &Type, new: &Type) -> bool {
        match self {
            CompatMode::Backward => is_subtype(old, new),
            CompatMode::Forward => is_subtype(new, old),
            CompatMode::Full => is_subtype(old, new) && is_subtype(new, old),
            CompatMode::None => true,
        }
    }
}

impl fmt::Display for CompatMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompatMode::Backward => "backward",
            CompatMode::Forward => "forward",
            CompatMode::Full => "full",
            CompatMode::None => "none",
        })
    }
}

/// One stored schema version.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Subject name (e.g. a topic or dataset id).
    pub name: String,
    /// 1-based version within the subject.
    pub version: u64,
    /// The schema.
    pub schema: Type,
}

/// Result of a publish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishOutcome {
    /// Version now associated with the schema.
    pub version: u64,
    /// `true` when the schema was already registered under this subject
    /// (syntactically identical to the latest version); no entry was
    /// appended.
    pub unchanged: bool,
}

/// Registry failures.
#[derive(Debug)]
pub enum RegistryError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The log contains a malformed entry (line number, description).
    Corrupt {
        /// 1-based log line.
        line: usize,
        /// What is wrong with it.
        message: String,
    },
    /// The publish violates the requested compatibility mode.
    Incompatible {
        /// The gate that failed.
        mode: CompatMode,
        /// Version the schema was checked against.
        against_version: u64,
        /// The structural changes, for the error report.
        changes: Vec<SchemaChange>,
    },
    /// Subject (or version) not present.
    NotFound {
        /// The requested subject.
        name: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry I/O error: {e}"),
            RegistryError::Corrupt { line, message } => {
                write!(f, "corrupt registry log at line {line}: {message}")
            }
            RegistryError::Incompatible {
                mode,
                against_version,
                changes,
            } => {
                write!(
                    f,
                    "schema is not {mode}-compatible with version {against_version} \
                     ({} structural changes)",
                    changes.len()
                )
            }
            RegistryError::NotFound { name } => write!(f, "unknown subject {name:?}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}

/// What a publish must do, as decided by the shared gate logic.
#[derive(Debug)]
pub(crate) enum Prepared {
    /// The schema is equivalent to the latest version: no new entry.
    Unchanged(u64),
    /// Append this new entry.
    New(Entry),
}

/// The in-memory version index plus the compatibility gate — the part
/// of a registry that is independent of where entries persist. Both the
/// on-disk [`Registry`] and [`MemoryRegistry`](crate::MemoryRegistry)
/// are thin shells around it.
#[derive(Debug, Default)]
pub(crate) struct Index {
    subjects: BTreeMap<String, Vec<Entry>>,
}

impl Index {
    pub(crate) fn names(&self) -> Vec<&str> {
        self.subjects.keys().map(String::as_str).collect()
    }

    pub(crate) fn latest(&self, name: &str) -> Option<&Entry> {
        self.subjects.get(name).and_then(|v| v.last())
    }

    pub(crate) fn get(&self, name: &str, version: u64) -> Option<&Entry> {
        self.subjects
            .get(name)
            .and_then(|v| v.get(version.checked_sub(1)? as usize))
    }

    pub(crate) fn history(&self, name: &str) -> Result<&[Entry], RegistryError> {
        self.subjects
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| RegistryError::NotFound {
                name: name.to_string(),
            })
    }

    pub(crate) fn diff(
        &self,
        name: &str,
        from: u64,
        to: u64,
    ) -> Result<Vec<SchemaChange>, RegistryError> {
        let a = self
            .get(name, from)
            .ok_or_else(|| RegistryError::NotFound {
                name: format!("{name} v{from}"),
            })?;
        let b = self.get(name, to).ok_or_else(|| RegistryError::NotFound {
            name: format!("{name} v{to}"),
        })?;
        Ok(diff(&a.schema, &b.schema))
    }

    /// Load one already-versioned entry (from a log); versions must
    /// arrive in sequence per subject.
    pub(crate) fn insert_loaded(&mut self, entry: Entry) -> Result<(), String> {
        let versions = self.subjects.entry(entry.name.clone()).or_default();
        if entry.version != versions.len() as u64 + 1 {
            return Err(format!(
                "version {} out of sequence (expected {})",
                entry.version,
                versions.len() + 1
            ));
        }
        versions.push(entry);
        Ok(())
    }

    /// Decide what publishing `schema` under `name` with gate `mode`
    /// means: a no-op (schema equivalent to latest), a new entry, or an
    /// incompatibility error. Does not mutate the index — backends
    /// persist the entry first, then [`commit`](Index::commit) it.
    pub(crate) fn prepare_publish(
        &self,
        name: &str,
        schema: &Type,
        mode: CompatMode,
    ) -> Result<Prepared, RegistryError> {
        if let Some(latest) = self.latest(name) {
            let equivalent = latest.schema == *schema
                || (is_subtype(&latest.schema, schema) && is_subtype(schema, &latest.schema));
            if equivalent {
                return Ok(Prepared::Unchanged(latest.version));
            }
            if !mode.allows(&latest.schema, schema) {
                return Err(RegistryError::Incompatible {
                    mode,
                    against_version: latest.version,
                    changes: diff(&latest.schema, schema),
                });
            }
        }
        Ok(Prepared::New(Entry {
            name: name.to_string(),
            version: self.latest(name).map_or(1, |e| e.version + 1),
            schema: schema.clone(),
        }))
    }

    /// Record an entry produced by [`prepare_publish`](Index::prepare_publish).
    pub(crate) fn commit(&mut self, entry: Entry) {
        self.subjects
            .entry(entry.name.clone())
            .or_default()
            .push(entry);
    }
}

/// The storage interface a schema-publishing component programs
/// against: the daemon publishes per-source snapshots through a
/// `Box<dyn RegistryStore + Send>` without caring whether versions land
/// in an on-disk log ([`Registry`]) or stay resident
/// ([`MemoryRegistry`](crate::MemoryRegistry)).
///
/// Methods return owned data (unlike the ref-returning inherent
/// accessors on [`Registry`]) so the trait stays object-safe and
/// implementations remain free to synthesize entries on demand.
pub trait RegistryStore {
    /// All subject names, sorted.
    fn subject_names(&self) -> Vec<String>;

    /// The latest entry of a subject.
    fn latest_entry(&self, name: &str) -> Option<Entry>;

    /// A specific version of a subject.
    fn entry(&self, name: &str, version: u64) -> Option<Entry>;

    /// Every version of a subject, oldest first.
    fn entries(&self, name: &str) -> Result<Vec<Entry>, RegistryError>;

    /// Structural changes between two versions of a subject.
    fn changes(&self, name: &str, from: u64, to: u64) -> Result<Vec<SchemaChange>, RegistryError>;

    /// Publish a schema under `name`, gated by `mode` against the
    /// latest version, deduplicating equivalent schemas.
    fn publish_schema(
        &mut self,
        name: &str,
        schema: &Type,
        mode: CompatMode,
    ) -> Result<PublishOutcome, RegistryError>;

    /// The latest version number of a subject — the watch primitive: a
    /// poller remembers the last version it saw and treats an increase
    /// as "schema drifted, diff the two versions".
    fn latest_version(&self, name: &str) -> Option<u64> {
        self.latest_entry(name).map(|e| e.version)
    }
}

/// The on-disk registry: an in-memory index over an append-only NDJSON
/// log.
#[derive(Debug)]
pub struct Registry {
    path: PathBuf,
    index: Index,
    recovered: Option<String>,
}

impl Registry {
    /// Open (or create) a registry log at `path`.
    ///
    /// A malformed *final* record is treated as a torn append (the
    /// writer died mid-`write`): it is dropped, the log is truncated
    /// back to the last good record, and [`Registry::recovered`]
    /// reports what happened. Corruption anywhere *before* the tail
    /// cannot be a torn append and still fails with
    /// [`RegistryError::Corrupt`].
    pub fn open(path: impl AsRef<Path>) -> Result<Registry, RegistryError> {
        let path = path.as_ref().to_path_buf();
        let mut index = Index::default();
        let mut recovered = None;
        let mut data = Vec::new();
        match std::fs::File::open(&path) {
            Ok(mut file) => {
                file.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        // Byte-accurate line scan (rather than BufRead::lines) so a
        // torn tail can be truncated away at its exact start offset.
        let mut pos = 0usize;
        let mut line_no = 0usize;
        while pos < data.len() {
            let start = pos;
            let (raw, next) = match data[pos..].iter().position(|&b| b == b'\n') {
                Some(i) => (&data[pos..pos + i], pos + i + 1),
                None => (&data[pos..], data.len()),
            };
            line_no += 1;
            pos = next;
            let parsed = std::str::from_utf8(raw)
                .map_err(|_| "invalid UTF-8".to_string())
                .and_then(|line| {
                    if line.trim().is_empty() {
                        Ok(None)
                    } else {
                        parse_entry(line).map(Some)
                    }
                });
            let message = match parsed {
                Ok(None) => continue,
                Ok(Some(entry)) => match index.insert_loaded(entry) {
                    Ok(()) => continue,
                    Err(message) => message,
                },
                Err(message) => message,
            };
            let tail_is_blank = data[pos..].iter().all(|b| b.is_ascii_whitespace());
            if !tail_is_blank {
                return Err(RegistryError::Corrupt {
                    line: line_no,
                    message,
                });
            }
            // Torn final record: drop it and truncate the log so the
            // next append starts at a clean boundary.
            OpenOptions::new()
                .write(true)
                .open(&path)?
                .set_len(start as u64)?;
            recovered = Some(format!(
                "registry log recovered: dropped torn trailing record at line {line_no} \
                 ({message}); truncated to {start} bytes"
            ));
            break;
        }
        Ok(Registry {
            path,
            index,
            recovered,
        })
    }

    /// What `open` did to recover the log, if anything: a description
    /// of the torn trailing record it dropped, or `None` when the log
    /// loaded cleanly.
    pub fn recovered(&self) -> Option<&str> {
        self.recovered.as_deref()
    }

    /// All subject names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.index.names()
    }

    /// The latest entry of a subject.
    pub fn latest(&self, name: &str) -> Option<&Entry> {
        self.index.latest(name)
    }

    /// A specific version of a subject.
    pub fn get(&self, name: &str, version: u64) -> Option<&Entry> {
        self.index.get(name, version)
    }

    /// Every version of a subject, oldest first.
    pub fn history(&self, name: &str) -> Result<&[Entry], RegistryError> {
        self.index.history(name)
    }

    /// Structural changes between two versions of a subject.
    pub fn diff(&self, name: &str, from: u64, to: u64) -> Result<Vec<SchemaChange>, RegistryError> {
        self.index.diff(name, from, to)
    }

    /// Publish a schema under `name`, gated by `mode` against the latest
    /// version. Publishing a schema *equivalent* to the latest one
    /// (mutual subtype — e.g. `[ε*]` vs `[]` — or syntactically identical)
    /// is a no-op returning the existing version, so re-publishing the
    /// inferred schema of unchanged data never churns versions.
    pub fn publish(
        &mut self,
        name: &str,
        schema: &Type,
        mode: CompatMode,
    ) -> Result<PublishOutcome, RegistryError> {
        match self.index.prepare_publish(name, schema, mode)? {
            Prepared::Unchanged(version) => Ok(PublishOutcome {
                version,
                unchanged: true,
            }),
            Prepared::New(entry) => {
                self.append(&entry)?;
                let version = entry.version;
                self.index.commit(entry);
                Ok(PublishOutcome {
                    version,
                    unchanged: false,
                })
            }
        }
    }

    fn append(&self, entry: &Entry) -> Result<(), RegistryError> {
        let mut m = Map::new();
        m.insert("name", entry.name.clone());
        m.insert("version", entry.version as i64);
        m.insert("schema", entry.schema.to_string());
        let line = typefuse_json::to_string(&Value::Object(m));
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        Ok(())
    }
}

impl RegistryStore for Registry {
    fn subject_names(&self) -> Vec<String> {
        self.names().into_iter().map(str::to_string).collect()
    }

    fn latest_entry(&self, name: &str) -> Option<Entry> {
        self.latest(name).cloned()
    }

    fn entry(&self, name: &str, version: u64) -> Option<Entry> {
        self.get(name, version).cloned()
    }

    fn entries(&self, name: &str) -> Result<Vec<Entry>, RegistryError> {
        self.history(name).map(<[Entry]>::to_vec)
    }

    fn changes(&self, name: &str, from: u64, to: u64) -> Result<Vec<SchemaChange>, RegistryError> {
        self.diff(name, from, to)
    }

    fn publish_schema(
        &mut self,
        name: &str,
        schema: &Type,
        mode: CompatMode,
    ) -> Result<PublishOutcome, RegistryError> {
        self.publish(name, schema, mode)
    }
}

fn parse_entry(line: &str) -> Result<Entry, String> {
    let value = typefuse_json::parse_value(line).map_err(|e| e.to_string())?;
    let name = value
        .get("name")
        .and_then(Value::as_str)
        .ok_or("missing name")?
        .to_string();
    let version = value
        .get("version")
        .and_then(Value::as_i64)
        .filter(|v| *v >= 1)
        .ok_or("missing or invalid version")? as u64;
    let schema_text = value
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing schema")?;
    let schema = parse_type(schema_text).map_err(|e| format!("bad schema: {e}"))?;
    Ok(Entry {
        name,
        version,
        schema,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn fresh(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("typefuse-registry-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn t(text: &str) -> Type {
        parse_type(text).unwrap()
    }

    #[test]
    fn publish_assigns_sequential_versions() {
        let mut reg = Registry::open(fresh("seq.ndjson")).unwrap();
        assert_eq!(
            reg.publish("a", &t("{x: Num}"), CompatMode::None).unwrap(),
            PublishOutcome {
                version: 1,
                unchanged: false
            }
        );
        assert_eq!(
            reg.publish("a", &t("{x: Num, y: Str?}"), CompatMode::None)
                .unwrap()
                .version,
            2
        );
        assert_eq!(
            reg.publish("b", &t("Num"), CompatMode::None)
                .unwrap()
                .version,
            1
        );
        assert_eq!(reg.names(), vec!["a", "b"]);
    }

    #[test]
    fn identical_schema_is_a_noop() {
        let mut reg = Registry::open(fresh("noop.ndjson")).unwrap();
        reg.publish("a", &t("{x: Num}"), CompatMode::Backward)
            .unwrap();
        let again = reg
            .publish("a", &t("{x: Num}"), CompatMode::Backward)
            .unwrap();
        assert_eq!(
            again,
            PublishOutcome {
                version: 1,
                unchanged: true
            }
        );
        assert_eq!(reg.history("a").unwrap().len(), 1);
    }

    #[test]
    fn backward_gate() {
        let mut reg = Registry::open(fresh("backward.ndjson")).unwrap();
        reg.publish("a", &t("{x: Num}"), CompatMode::Backward)
            .unwrap();
        // Widening is fine…
        reg.publish("a", &t("{x: Null + Num, y: Str?}"), CompatMode::Backward)
            .unwrap();
        // …but narrowing is rejected, with the changes attached.
        let err = reg
            .publish("a", &t("{x: Num}"), CompatMode::Backward)
            .unwrap_err();
        match err {
            RegistryError::Incompatible {
                against_version: 2,
                changes,
                ..
            } => {
                assert!(!changes.is_empty());
            }
            other => panic!("unexpected {other}"),
        }
        // The failed publish appended nothing.
        assert_eq!(reg.latest("a").unwrap().version, 2);
    }

    #[test]
    fn forward_and_full_gates() {
        let mut reg = Registry::open(fresh("forward.ndjson")).unwrap();
        reg.publish("a", &t("{x: Num, y: Str?}"), CompatMode::None)
            .unwrap();
        // Forward allows narrowing…
        reg.publish("a", &t("{x: Num}"), CompatMode::Forward)
            .unwrap();
        // …but not widening.
        assert!(reg
            .publish("a", &t("{x: Num, z: Bool?}"), CompatMode::Forward)
            .is_err());
        // Full only allows equivalents (e.g. [ε*] vs []).
        reg.publish("b", &t("{x: []}"), CompatMode::None).unwrap();
        let starred = Type::Record(
            typefuse_types::RecordType::new(vec![typefuse_types::Field::required(
                "x",
                Type::star(Type::Bottom),
            )])
            .unwrap(),
        );
        let outcome = reg.publish("b", &starred, CompatMode::Full).unwrap();
        assert!(outcome.unchanged, "equivalent schemas dedup");
        assert_eq!(outcome.version, 1);
        assert!(reg
            .publish("b", &t("{x: [], y: Num?}"), CompatMode::Full)
            .is_err());
    }

    #[test]
    fn reopening_restores_state() {
        let path = fresh("reopen.ndjson");
        {
            let mut reg = Registry::open(&path).unwrap();
            reg.publish("a", &t("{x: Num}"), CompatMode::None).unwrap();
            reg.publish("a", &t("{x: Num, y: Str?}"), CompatMode::None)
                .unwrap();
        }
        let reg = Registry::open(&path).unwrap();
        assert_eq!(reg.latest("a").unwrap().version, 2);
        assert_eq!(reg.get("a", 1).unwrap().schema, t("{x: Num}"));
        assert_eq!(reg.history("a").unwrap().len(), 2);
        // The gate still works across restarts.
        let mut reg = reg;
        assert!(reg.publish("a", &t("Num"), CompatMode::Backward).is_err());
    }

    #[test]
    fn diff_between_versions() {
        let path = fresh("diff.ndjson");
        let mut reg = Registry::open(&path).unwrap();
        reg.publish("a", &t("{x: Num}"), CompatMode::None).unwrap();
        reg.publish("a", &t("{x: Str}"), CompatMode::None).unwrap();
        let changes = reg.diff("a", 1, 2).unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].to_string(), "~ $.x: Num → Str");
        assert!(reg.diff("a", 1, 9).is_err());
        assert!(reg.diff("zzz", 1, 1).is_err());
    }

    #[test]
    fn corrupt_logs_are_rejected() {
        // Corruption *before* the tail cannot be a torn append: reject.
        let path = fresh("corrupt.ndjson");
        std::fs::write(
            &path,
            "not json\n{\"name\":\"a\",\"version\":1,\"schema\":\"Num\"}\n",
        )
        .unwrap();
        assert!(matches!(
            Registry::open(&path),
            Err(RegistryError::Corrupt { line: 1, .. })
        ));

        let path = fresh("skip.ndjson");
        std::fs::write(
            &path,
            "{\"name\":\"a\",\"version\":2,\"schema\":\"Num\"}\n\
             {\"name\":\"a\",\"version\":3,\"schema\":\"Num\"}\n",
        )
        .unwrap();
        assert!(
            matches!(Registry::open(&path), Err(RegistryError::Corrupt { .. })),
            "out-of-sequence version"
        );
    }

    #[test]
    fn torn_trailing_record_is_truncated_and_reported() {
        let path = fresh("torn.ndjson");
        // Publish two entries, then simulate a crash mid-append by
        // hand-truncating the final record.
        {
            let mut reg = Registry::open(&path).unwrap();
            reg.publish("a", &t("{x: Num}"), CompatMode::None).unwrap();
            reg.publish("a", &t("{x: Str}"), CompatMode::None).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let cut = full.len() - 7;
        std::fs::write(&path, &full[..cut]).unwrap();

        let reg = Registry::open(&path).unwrap();
        let warning = reg.recovered().expect("recovery reported");
        assert!(warning.contains("torn trailing record"), "{warning}");
        assert_eq!(reg.latest("a").unwrap().version, 1, "v2 was torn away");
        // The file itself was truncated back to the last good record…
        let kept = std::fs::read(&path).unwrap();
        assert!(kept.len() < cut);
        assert!(kept.ends_with(b"\n"));
        // …so the next open is clean and the next publish appends at a
        // record boundary.
        let mut reg = Registry::open(&path).unwrap();
        assert!(reg.recovered().is_none());
        reg.publish("a", &t("{x: Str}"), CompatMode::None).unwrap();
        let reg = Registry::open(&path).unwrap();
        assert!(reg.recovered().is_none());
        assert_eq!(reg.latest("a").unwrap().version, 2);
    }

    #[test]
    fn lone_torn_record_recovers_to_an_empty_registry() {
        let path = fresh("lone-torn.ndjson");
        std::fs::write(&path, "{\"name\":\"a\",\"ver").unwrap();
        let reg = Registry::open(&path).unwrap();
        assert!(reg.recovered().is_some());
        assert!(reg.names().is_empty());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
    }

    #[test]
    fn missing_subject_errors() {
        let reg = Registry::open(fresh("missing.ndjson")).unwrap();
        assert!(reg.latest("nope").is_none());
        assert!(matches!(
            reg.history("nope"),
            Err(RegistryError::NotFound { .. })
        ));
    }

    #[test]
    fn trait_object_publishes_through_the_on_disk_backend() {
        let path = fresh("dyn.ndjson");
        let mut store: Box<dyn RegistryStore + Send> = Box::new(Registry::open(&path).unwrap());
        store
            .publish_schema("a", &t("{x: Num}"), CompatMode::Backward)
            .unwrap();
        store
            .publish_schema("a", &t("{x: Num, y: Str?}"), CompatMode::Backward)
            .unwrap();
        assert_eq!(store.latest_version("a"), Some(2));
        assert_eq!(store.subject_names(), vec!["a".to_string()]);
        assert_eq!(store.entries("a").unwrap().len(), 2);
        assert_eq!(store.changes("a", 1, 2).unwrap().len(), 1);
        // The dyn writes land in the same log a reopen sees.
        let reopened = Registry::open(&path).unwrap();
        assert_eq!(reopened.latest("a").unwrap().version, 2);
    }

    #[test]
    fn fused_profile_schemas_round_trip_through_the_log() {
        use typefuse_datagen::{DatasetProfile, Profile};
        use typefuse_infer::{fuse_all, infer_type};

        let path = fresh("profiles.ndjson");
        let mut reg = Registry::open(&path).unwrap();
        for profile in Profile::ALL {
            let values: Vec<_> = profile.generate(5, 100).collect();
            let schema = fuse_all(&values.iter().map(infer_type).collect::<Vec<_>>());
            reg.publish(profile.name(), &schema, CompatMode::None)
                .unwrap();
        }
        let reopened = Registry::open(&path).unwrap();
        for profile in Profile::ALL {
            let values: Vec<_> = profile.generate(5, 100).collect();
            let schema = fuse_all(&values.iter().map(infer_type).collect::<Vec<_>>());
            // `[ε*]` prints as `[]` and reparses as the (semantically
            // equal) empty positional array type, so compare the printed
            // canonical forms.
            assert_eq!(
                reopened.latest(profile.name()).unwrap().schema.to_string(),
                schema.to_string(),
                "{profile} schema survives the notation round trip"
            );
        }
    }
}
