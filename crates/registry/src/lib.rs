//! # typefuse-registry
//!
//! A versioned, compatibility-gated store for inferred schemas.
//!
//! The paper's related work (Section 3, Wang et al. \[22\]) studies
//! "efficiently managing a schema repository for JSON document stores";
//! this crate is the operational piece a production deployment of
//! typefuse needs around that idea: producers publish the schema they
//! infer from each batch, the registry assigns versions, and a
//! [`CompatMode`] gate rejects publishes that would break consumers —
//! using the same sound subtyping that backs Theorem 5.2.
//!
//! * **Backward** compatible: the new schema admits everything the old
//!   one did (`old <: new`) — readers written against the new schema can
//!   still process archived data.
//! * **Forward** compatible: `new <: old` — readers written against the
//!   old schema keep working on new data.
//! * **Full**: both. **None**: no gate.
//!
//! Storage is a human-auditable append-only NDJSON log: one entry per
//! version, schemas in the paper's notation. No timestamps or machine
//! identifiers — the log is deterministic and diff-friendly.
//!
//! ```
//! use typefuse_registry::{CompatMode, Registry};
//! use typefuse_types::parse_type;
//!
//! let dir = std::env::temp_dir().join("typefuse-registry-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("doc.registry.ndjson");
//! let _ = std::fs::remove_file(&path);
//!
//! let mut reg = Registry::open(&path).unwrap();
//! let v1 = parse_type("{id: Num, name: Str}").unwrap();
//! let v2 = parse_type("{id: Num, name: Str, tags: [Str*]?}").unwrap();
//!
//! assert_eq!(reg.publish("events", &v1, CompatMode::Backward).unwrap().version, 1);
//! // Adding an optional field is backward compatible:
//! assert_eq!(reg.publish("events", &v2, CompatMode::Backward).unwrap().version, 2);
//! // Dropping a field is not:
//! let narrowed = parse_type("{id: Num}").unwrap();
//! assert!(reg.publish("events", &narrowed, CompatMode::Backward).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod memory;
mod store;

pub use memory::MemoryRegistry;
pub use store::{CompatMode, Entry, PublishOutcome, Registry, RegistryError, RegistryStore};
