//! RFC 6901 JSON Pointer resolution.
//!
//! Inferred schemas get exported as JSON Schema documents
//! (`typefuse_types::export`); tooling that consumes them (and the CLI
//! tests) needs standard pointer navigation — `/properties/user/type` —
//! including the `~0`/`~1` escapes.

use crate::value::Value;

impl Value {
    /// Resolve an RFC 6901 JSON Pointer against this value.
    ///
    /// The empty string points at the value itself; each `/`-separated
    /// token names an object key or an array index; `~1` unescapes to `/`
    /// and `~0` to `~`.
    ///
    /// ```
    /// use typefuse_json::{json, Value};
    /// let v = json!({"a": {"b/c": [10, 20]}});
    /// assert_eq!(v.pointer("/a/b~1c/1"), Some(&Value::from(20)));
    /// assert_eq!(v.pointer(""), Some(&v));
    /// assert_eq!(v.pointer("/missing"), None);
    /// ```
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        if !pointer.starts_with('/') {
            return None;
        }
        let mut current = self;
        for token in pointer[1..].split('/') {
            let token = unescape(token);
            current = match current {
                Value::Object(map) => map.get(&token)?,
                Value::Array(elems) => {
                    // RFC 6901: indices are digits without leading zeros.
                    if token.len() > 1 && token.starts_with('0') {
                        return None;
                    }
                    let idx: usize = token.parse().ok()?;
                    elems.get(idx)?
                }
                _ => return None,
            };
        }
        Some(current)
    }
}

fn unescape(token: &str) -> String {
    // Order matters: `~1` before `~0`, per the RFC.
    token.replace("~1", "/").replace("~0", "~")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    /// The RFC 6901 §5 example document.
    fn rfc_doc() -> Value {
        json!({
            "foo": ["bar", "baz"],
            "": 0,
            "a/b": 1,
            "c%d": 2,
            "e^f": 3,
            "g|h": 4,
            "i\\j": 5,
            "k\"l": 6,
            " ": 7,
            "m~n": 8
        })
    }

    #[test]
    fn rfc_6901_examples() {
        let doc = rfc_doc();
        assert_eq!(doc.pointer(""), Some(&doc));
        assert_eq!(doc.pointer("/foo"), Some(&json!(["bar", "baz"])));
        assert_eq!(doc.pointer("/foo/0"), Some(&json!("bar")));
        assert_eq!(doc.pointer("/"), Some(&json!(0)));
        assert_eq!(doc.pointer("/a~1b"), Some(&json!(1)));
        assert_eq!(doc.pointer("/c%d"), Some(&json!(2)));
        assert_eq!(doc.pointer("/e^f"), Some(&json!(3)));
        assert_eq!(doc.pointer("/ "), Some(&json!(7)));
        assert_eq!(doc.pointer("/m~0n"), Some(&json!(8)));
    }

    #[test]
    fn misses() {
        let doc = rfc_doc();
        assert_eq!(doc.pointer("/nope"), None);
        assert_eq!(doc.pointer("/foo/2"), None);
        assert_eq!(
            doc.pointer("/foo/-"),
            None,
            "append marker unsupported for reads"
        );
        assert_eq!(doc.pointer("/foo/00"), None, "leading zeros rejected");
        assert_eq!(doc.pointer("/foo/0/deeper"), None, "scalar has no children");
        assert_eq!(doc.pointer("foo"), None, "must start with /");
    }

    #[test]
    fn deep_navigation() {
        let v = json!({"a": [{"b": {"c": [null, {"d": 42}]}}]});
        assert_eq!(v.pointer("/a/0/b/c/1/d"), Some(&json!(42)));
    }

    #[test]
    fn escape_order() {
        // `~01` must unescape to `~1`, not to `/`.
        let v = json!({"~1": "tilde-one"});
        assert_eq!(v.pointer("/~01"), Some(&json!("tilde-one")));
    }
}
