//! Newline-delimited JSON (NDJSON) streaming.
//!
//! All four datasets in the paper's evaluation (GitHub, Twitter, Wikidata,
//! NYTimes) are stored as one JSON object per line. This module reads such
//! streams without materialising the whole file, using a reusable line
//! buffer (one allocation per *record tree*, not per line read).

use crate::error::{Error, ErrorKind, Position, Result};
use crate::parse::{Parser, ParserOptions};
use crate::value::Value;
use std::io::BufRead;
use typefuse_obs::Recorder;

/// A streaming reader that yields one [`Value`] per non-empty input line.
///
/// Blank lines are skipped. Errors carry the 1-based line number of the
/// offending record in their position so bad records can be located in
/// multi-gigabyte dumps.
///
/// ```
/// use typefuse_json::NdjsonReader;
///
/// let data = "{\"a\":1}\n\n{\"a\":2}\n";
/// let values: Vec<_> = NdjsonReader::new(data.as_bytes())
///     .collect::<Result<Vec<_>, _>>()
///     .unwrap();
/// assert_eq!(values.len(), 2);
/// ```
pub struct NdjsonReader<R> {
    reader: R,
    line: String,
    line_no: u32,
    options: ParserOptions,
    /// Stop permanently after an I/O error.
    poisoned: bool,
    recorder: Recorder,
}

impl<R: BufRead> NdjsonReader<R> {
    /// Wrap a buffered reader with default parser options.
    pub fn new(reader: R) -> Self {
        Self::with_options(reader, ParserOptions::default())
    }

    /// Wrap a buffered reader with explicit parser options.
    pub fn with_options(reader: R, options: ParserOptions) -> Self {
        NdjsonReader {
            reader,
            line: String::new(),
            line_no: 0,
            options,
            poisoned: false,
            recorder: Recorder::disabled(),
        }
    }

    /// Attach an observability recorder. While iterating, the reader
    /// counts `json.bytes` (raw bytes consumed, including newlines and
    /// blank lines), `json.lines` (input lines, including blank ones),
    /// `json.records` (successfully parsed records) and
    /// `json.parse_errors`. A disabled recorder costs nothing.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The number of input lines consumed so far (including blank ones).
    pub fn lines_read(&self) -> u32 {
        self.line_no
    }

    fn read_record(&mut self) -> Option<Result<Value>> {
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(n) => self.recorder.add("json.bytes", n as u64),
                Err(e) => {
                    self.poisoned = true;
                    return Some(Err(Error::at(
                        ErrorKind::Io(e.to_string()),
                        Position {
                            offset: 0,
                            line: self.line_no + 1,
                            column: 1,
                        },
                    )));
                }
            }
            self.line_no += 1;
            self.recorder.add("json.lines", 1);
            let trimmed = self.line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let parser = Parser::with_options(trimmed.as_bytes(), self.options.clone());
            return Some(match parser.parse_complete() {
                Ok(v) => {
                    self.recorder.add("json.records", 1);
                    Ok(v)
                }
                Err(e) => {
                    self.recorder.add("json.parse_errors", 1);
                    // Re-anchor the error at the file-level line number;
                    // the column within the line is preserved.
                    let mut pos = e.span().start;
                    pos.line = self.line_no;
                    Err(Error::at(e.kind().clone(), pos))
                }
            });
        }
    }
}

impl<R: BufRead> Iterator for NdjsonReader<R> {
    type Item = Result<Value>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned {
            return None;
        }
        self.read_record()
    }
}

/// Serialize an iterator of values as NDJSON into a writer.
pub fn write_ndjson<'a, W, I>(mut writer: W, values: I) -> std::io::Result<u64>
where
    W: std::io::Write,
    I: IntoIterator<Item = &'a Value>,
{
    let mut bytes = 0u64;
    for v in values {
        let line = crate::ser::to_string(v);
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        bytes += line.len() as u64 + 1;
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use std::io::{self, Read};

    #[test]
    fn reads_records_skipping_blanks() {
        let data = "{\"a\":1}\n\n   \n{\"a\":2}";
        let values: Vec<Value> = NdjsonReader::new(data.as_bytes())
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(values, vec![json!({"a": 1}), json!({"a": 2})]);
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert_eq!(NdjsonReader::new("".as_bytes()).count(), 0);
        assert_eq!(NdjsonReader::new("\n\n".as_bytes()).count(), 0);
    }

    #[test]
    fn error_carries_file_line_number() {
        let data = "{\"a\":1}\n{\"bad\n{\"a\":2}\n";
        let mut it = NdjsonReader::new(data.as_bytes());
        assert!(it.next().unwrap().is_ok());
        let err = it.next().unwrap().unwrap_err();
        assert_eq!(err.span().start.line, 2);
        // Reading continues after a parse error.
        assert_eq!(it.next().unwrap().unwrap(), json!({"a": 2}));
    }

    #[test]
    fn trailing_garbage_on_a_line_is_an_error() {
        let mut it = NdjsonReader::new("{} {}\n".as_bytes());
        assert!(matches!(
            it.next().unwrap().unwrap_err().kind(),
            ErrorKind::TrailingCharacters
        ));
    }

    #[test]
    fn write_then_read_round_trip() {
        let values = vec![json!({"k": [1, 2.5, "s"]}), json!(null), json!([{}])];
        let mut buf = Vec::new();
        let bytes = write_ndjson(&mut buf, &values).unwrap();
        assert_eq!(bytes, buf.len() as u64);
        let back: Vec<Value> = NdjsonReader::new(&buf[..])
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(back, values);
    }

    struct FailingReader;

    impl Read for FailingReader {
        fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
            Err(io::Error::other("disk on fire"))
        }
    }

    #[test]
    fn io_error_poisons_the_iterator() {
        let mut it = NdjsonReader::new(io::BufReader::new(FailingReader));
        let err = it.next().unwrap().unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::Io(_)));
        assert!(it.next().is_none());
    }

    #[test]
    fn recorder_counts_bytes_lines_records_and_errors() {
        let data = "{\"a\":1}\n\n{\"bad\n{\"a\":2}\n";
        let rec = typefuse_obs::Recorder::enabled();
        let reader = NdjsonReader::new(data.as_bytes()).with_recorder(rec.clone());
        let outcomes: Vec<_> = reader.collect();
        assert_eq!(outcomes.len(), 3, "two records and one error");
        assert_eq!(rec.counter_value("json.bytes"), data.len() as u64);
        assert_eq!(rec.counter_value("json.lines"), 4);
        assert_eq!(rec.counter_value("json.records"), 2);
        assert_eq!(rec.counter_value("json.parse_errors"), 1);
    }

    #[test]
    fn lines_read_counts_blanks() {
        let mut it = NdjsonReader::new("\n{}\n".as_bytes());
        it.next();
        assert_eq!(it.lines_read(), 2);
    }
}
