//! Newline-delimited JSON (NDJSON) streaming.
//!
//! All four datasets in the paper's evaluation (GitHub, Twitter, Wikidata,
//! NYTimes) are stored as one JSON object per line. This module reads such
//! streams without materialising the whole file, using a reusable line
//! buffer (one allocation per *record tree*, not per line read).
//!
//! Because the paper's inputs are remote multi-gigabyte dumps, the line
//! reader is also where ingestion fault tolerance starts:
//!
//! * [`RetryPolicy`] — bounded retry with exponential backoff for
//!   *transient* I/O errors ([`std::io::ErrorKind::Interrupted`] /
//!   [`std::io::ErrorKind::WouldBlock`]), counted as `ingest.retries`;
//! * [`read_line_bounded`] — a `fill_buf`-level line reader with an
//!   optional `max_line_bytes` guard, so one pathological line degrades
//!   into a [`ErrorKind::RecordTooLarge`] record instead of ballooning
//!   memory.

use crate::error::{Error, ErrorKind, Position, Result};
use crate::parse::{Parser, ParserOptions};
use crate::value::Value;
use std::io::BufRead;
use std::time::Duration;
use typefuse_obs::Recorder;

/// Bounded retry with exponential backoff for transient I/O errors.
///
/// Only [`std::io::ErrorKind::Interrupted`] and
/// [`std::io::ErrorKind::WouldBlock`] are considered transient; every
/// other error kind fails immediately. Retrying a buffered line read is
/// safe because partial data already appended to the line buffer is kept
/// — the next attempt continues exactly where the stream stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of retries per failing read (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt (capped at
    /// 100 ms).
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Four retries starting at 2 ms — enough to ride out signal
    /// interruptions and momentary `WouldBlock`s without stalling a
    /// genuinely dead source for long.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// Never retry: every I/O error is surfaced immediately.
    pub const fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
        }
    }

    /// Whether an error kind is worth retrying.
    pub fn is_transient(kind: std::io::ErrorKind) -> bool {
        matches!(
            kind,
            std::io::ErrorKind::Interrupted | std::io::ErrorKind::WouldBlock
        )
    }

    /// Backoff before retry number `attempt` (0-based): exponential from
    /// `base_backoff`, capped at 100 ms.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let cap = Duration::from_millis(100);
        self.base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(cap)
    }
}

/// Outcome of [`read_line_bounded`]: how many raw bytes the line consumed
/// from the stream (including its newline) and whether the content was cut
/// off by the `max_line_bytes` guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawLine {
    /// Raw bytes consumed, including the trailing newline if present.
    /// Zero means end of input (no line).
    pub consumed: usize,
    /// The line exceeded `max_line_bytes`; `buf` holds only the first
    /// `max_line_bytes` bytes of its content.
    pub truncated: bool,
}

/// Read one line's *content* (no trailing newline) into `buf`, retrying
/// transient I/O errors per `policy` (each retry counts `ingest.retries`
/// on `rec`) and capping the buffered content at `max_line_bytes`.
///
/// Oversized lines are still consumed from the stream to the next
/// newline — only the buffer is bounded — so the reader stays positioned
/// on record boundaries and can keep going under a skip/quarantine
/// policy.
pub fn read_line_bounded<R: BufRead + ?Sized>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max_line_bytes: Option<usize>,
    policy: RetryPolicy,
    rec: &Recorder,
) -> std::io::Result<RawLine> {
    let mut consumed = 0usize;
    let mut truncated = false;
    let mut attempts = 0u32;
    loop {
        let (take, done) = {
            let chunk = match reader.fill_buf() {
                Ok(chunk) => {
                    attempts = 0;
                    chunk
                }
                Err(e) if RetryPolicy::is_transient(e.kind()) && attempts < policy.max_retries => {
                    rec.add("ingest.retries", 1);
                    std::thread::sleep(policy.backoff(attempts));
                    attempts += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                return Ok(RawLine {
                    consumed,
                    truncated,
                });
            }
            let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
                Some(i) => (i + 1, true),
                None => (chunk.len(), false),
            };
            let content = if done { take - 1 } else { take };
            match max_line_bytes {
                Some(cap) => {
                    let room = cap.saturating_sub(buf.len());
                    if content > room {
                        truncated = true;
                    }
                    buf.extend_from_slice(&chunk[..content.min(room)]);
                }
                None => buf.extend_from_slice(&chunk[..content]),
            }
            (take, done)
        };
        reader.consume(take);
        consumed += take;
        if done {
            return Ok(RawLine {
                consumed,
                truncated,
            });
        }
    }
}

/// Trim ASCII whitespace from both ends of a byte slice.
/// (A local stand-in for `slice::trim_ascii`, which is newer than this
/// workspace's MSRV.)
pub fn trim_ascii_bytes(mut bytes: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = bytes {
        if first.is_ascii_whitespace() {
            bytes = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., last] = bytes {
        if last.is_ascii_whitespace() {
            bytes = rest;
        } else {
            break;
        }
    }
    bytes
}

/// A streaming reader that yields one [`Value`] per non-empty input line.
///
/// Blank lines are skipped. Errors carry the 1-based line number of the
/// offending record in their position so bad records can be located in
/// multi-gigabyte dumps. Parse errors (including
/// [`ErrorKind::RecordTooLarge`] from the [`with_max_line_bytes`] guard)
/// do not stop iteration; I/O errors do, after exhausting the configured
/// [`RetryPolicy`].
///
/// [`with_max_line_bytes`]: NdjsonReader::with_max_line_bytes
///
/// ```
/// use typefuse_json::NdjsonReader;
///
/// let data = "{\"a\":1}\n\n{\"a\":2}\n";
/// let values: Vec<_> = NdjsonReader::new(data.as_bytes())
///     .collect::<Result<Vec<_>, _>>()
///     .unwrap();
/// assert_eq!(values.len(), 2);
/// ```
pub struct NdjsonReader<R> {
    reader: R,
    line: Vec<u8>,
    line_no: u32,
    options: ParserOptions,
    retry: RetryPolicy,
    max_line_bytes: Option<usize>,
    /// Stop permanently after an I/O error.
    poisoned: bool,
    recorder: Recorder,
}

impl<R: BufRead> NdjsonReader<R> {
    /// Wrap a buffered reader with default parser options.
    pub fn new(reader: R) -> Self {
        Self::with_options(reader, ParserOptions::default())
    }

    /// Wrap a buffered reader with explicit parser options.
    pub fn with_options(reader: R, options: ParserOptions) -> Self {
        NdjsonReader {
            reader,
            line: Vec::new(),
            line_no: 0,
            options,
            retry: RetryPolicy::none(),
            max_line_bytes: None,
            poisoned: false,
            recorder: Recorder::disabled(),
        }
    }

    /// Attach an observability recorder. While iterating, the reader
    /// counts `json.bytes` (raw bytes consumed, including newlines and
    /// blank lines), `json.lines` (input lines, including blank ones),
    /// `json.records` (successfully parsed records),
    /// `json.parse_errors` and `ingest.retries`. A disabled recorder
    /// costs nothing.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Retry transient I/O errors per `policy` before surfacing them.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Cap the buffered content of a single line at `cap` bytes. An
    /// oversized line yields an [`ErrorKind::RecordTooLarge`] parse
    /// error (iteration continues) instead of growing the buffer
    /// without bound.
    pub fn with_max_line_bytes(mut self, cap: usize) -> Self {
        self.max_line_bytes = Some(cap);
        self
    }

    /// The number of input lines consumed so far (including blank ones).
    pub fn lines_read(&self) -> u32 {
        self.line_no
    }

    /// The raw content bytes of the most recently read line (without its
    /// newline, capped by the line-size guard). Lets callers quarantine
    /// the offending text after a parse error.
    pub fn last_line(&self) -> &[u8] {
        &self.line
    }

    fn read_record(&mut self) -> Option<Result<Value>> {
        loop {
            self.line.clear();
            let raw = match read_line_bounded(
                &mut self.reader,
                &mut self.line,
                self.max_line_bytes,
                self.retry,
                &self.recorder,
            ) {
                Ok(raw) if raw.consumed == 0 => return None,
                Ok(raw) => raw,
                Err(e) => {
                    self.poisoned = true;
                    return Some(Err(Error::at(
                        ErrorKind::Io(e.to_string()),
                        Position {
                            offset: 0,
                            line: self.line_no + 1,
                            column: 1,
                        },
                    )));
                }
            };
            self.recorder.add("json.bytes", raw.consumed as u64);
            self.line_no += 1;
            self.recorder.add("json.lines", 1);
            if raw.truncated {
                self.recorder.add("json.parse_errors", 1);
                let cap = self.max_line_bytes.unwrap_or(usize::MAX);
                return Some(Err(Error::at(
                    ErrorKind::RecordTooLarge(cap),
                    Position {
                        offset: 0,
                        line: self.line_no,
                        column: 1,
                    },
                )));
            }
            let trimmed = trim_ascii_bytes(&self.line);
            if trimmed.is_empty() {
                continue;
            }
            let parser = Parser::with_options(trimmed, self.options.clone());
            return Some(match parser.parse_complete() {
                Ok(v) => {
                    self.recorder.add("json.records", 1);
                    Ok(v)
                }
                Err(e) => {
                    self.recorder.add("json.parse_errors", 1);
                    // Re-anchor the error at the file-level line number;
                    // the column within the line is preserved.
                    let mut pos = e.span().start;
                    pos.line = self.line_no;
                    Err(Error::at(e.kind().clone(), pos))
                }
            });
        }
    }
}

impl<R: BufRead> Iterator for NdjsonReader<R> {
    type Item = Result<Value>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned {
            return None;
        }
        self.read_record()
    }
}

/// Serialize an iterator of values as NDJSON into a writer.
pub fn write_ndjson<'a, W, I>(mut writer: W, values: I) -> std::io::Result<u64>
where
    W: std::io::Write,
    I: IntoIterator<Item = &'a Value>,
{
    let mut bytes = 0u64;
    for v in values {
        let line = crate::ser::to_string(v);
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        bytes += line.len() as u64 + 1;
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use std::io::{self, Read};

    #[test]
    fn reads_records_skipping_blanks() {
        let data = "{\"a\":1}\n\n   \n{\"a\":2}";
        let values: Vec<Value> = NdjsonReader::new(data.as_bytes())
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(values, vec![json!({"a": 1}), json!({"a": 2})]);
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert_eq!(NdjsonReader::new("".as_bytes()).count(), 0);
        assert_eq!(NdjsonReader::new("\n\n".as_bytes()).count(), 0);
    }

    #[test]
    fn error_carries_file_line_number() {
        let data = "{\"a\":1}\n{\"bad\n{\"a\":2}\n";
        let mut it = NdjsonReader::new(data.as_bytes());
        assert!(it.next().unwrap().is_ok());
        let err = it.next().unwrap().unwrap_err();
        assert_eq!(err.span().start.line, 2);
        // Reading continues after a parse error.
        assert_eq!(it.next().unwrap().unwrap(), json!({"a": 2}));
    }

    #[test]
    fn trailing_garbage_on_a_line_is_an_error() {
        let mut it = NdjsonReader::new("{} {}\n".as_bytes());
        assert!(matches!(
            it.next().unwrap().unwrap_err().kind(),
            ErrorKind::TrailingCharacters
        ));
    }

    #[test]
    fn write_then_read_round_trip() {
        let values = vec![json!({"k": [1, 2.5, "s"]}), json!(null), json!([{}])];
        let mut buf = Vec::new();
        let bytes = write_ndjson(&mut buf, &values).unwrap();
        assert_eq!(bytes, buf.len() as u64);
        let back: Vec<Value> = NdjsonReader::new(&buf[..])
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(back, values);
    }

    struct FailingReader;

    impl Read for FailingReader {
        fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
            Err(io::Error::other("disk on fire"))
        }
    }

    #[test]
    fn io_error_poisons_the_iterator() {
        let mut it = NdjsonReader::new(io::BufReader::new(FailingReader));
        let err = it.next().unwrap().unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::Io(_)));
        assert!(it.next().is_none());
    }

    #[test]
    fn recorder_counts_bytes_lines_records_and_errors() {
        let data = "{\"a\":1}\n\n{\"bad\n{\"a\":2}\n";
        let rec = typefuse_obs::Recorder::enabled();
        let reader = NdjsonReader::new(data.as_bytes()).with_recorder(rec.clone());
        let outcomes: Vec<_> = reader.collect();
        assert_eq!(outcomes.len(), 3, "two records and one error");
        assert_eq!(rec.counter_value("json.bytes"), data.len() as u64);
        assert_eq!(rec.counter_value("json.lines"), 4);
        assert_eq!(rec.counter_value("json.records"), 2);
        assert_eq!(rec.counter_value("json.parse_errors"), 1);
    }

    #[test]
    fn lines_read_counts_blanks() {
        let mut it = NdjsonReader::new("\n{}\n".as_bytes());
        it.next();
        assert_eq!(it.lines_read(), 2);
    }

    #[test]
    fn last_line_exposes_the_offending_text() {
        let mut it = NdjsonReader::new("{bad wolf\n".as_bytes());
        assert!(it.next().unwrap().is_err());
        assert_eq!(it.last_line(), b"{bad wolf");
    }

    /// Yields `Interrupted`/`WouldBlock` before every real chunk.
    struct Flaky<'a> {
        data: &'a [u8],
        pos: usize,
        fail_next: bool,
        kind: io::ErrorKind,
    }

    impl Read for Flaky<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.fail_next && self.pos < self.data.len() {
                self.fail_next = false;
                return Err(io::Error::new(self.kind, "transient"));
            }
            self.fail_next = true;
            let n = buf.len().min(3).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn transient_errors_are_retried_and_counted() {
        for kind in [io::ErrorKind::Interrupted, io::ErrorKind::WouldBlock] {
            let data = "{\"a\":1}\n{\"a\":2}\n";
            let rec = typefuse_obs::Recorder::enabled();
            let flaky = Flaky {
                data: data.as_bytes(),
                pos: 0,
                fail_next: true,
                kind,
            };
            let values: Vec<Value> = NdjsonReader::new(io::BufReader::with_capacity(4, flaky))
                .with_retry(RetryPolicy {
                    max_retries: 2,
                    base_backoff: Duration::ZERO,
                })
                .with_recorder(rec.clone())
                .collect::<Result<Vec<_>>>()
                .unwrap();
            assert_eq!(values.len(), 2, "{kind:?}");
            assert!(rec.counter_value("ingest.retries") > 0, "{kind:?}");
        }
    }

    #[test]
    fn exhausted_retries_surface_the_io_error() {
        let flaky = Flaky {
            data: b"{\"a\":1}\n",
            pos: 0,
            fail_next: true,
            kind: io::ErrorKind::WouldBlock,
        };
        let mut it = NdjsonReader::new(io::BufReader::with_capacity(4, flaky))
            .with_retry(RetryPolicy::none());
        let err = it.next().unwrap().unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::Io(_)));
    }

    #[test]
    fn oversized_line_degrades_to_record_too_large() {
        let data = "{\"small\":1}\n{\"large\":\"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\"}\n{\"small\":2}\n";
        let mut it = NdjsonReader::new(data.as_bytes()).with_max_line_bytes(16);
        assert!(it.next().unwrap().is_ok());
        let err = it.next().unwrap().unwrap_err();
        assert!(matches!(err.kind(), ErrorKind::RecordTooLarge(16)));
        assert_eq!(err.span().start.line, 2);
        // The oversized line is fully consumed; iteration continues.
        assert_eq!(it.next().unwrap().unwrap(), json!({"small": 2}));
        assert!(it.next().is_none());
    }

    #[test]
    fn bounded_reader_handles_missing_final_newline() {
        let mut buf = Vec::new();
        let mut reader: &[u8] = b"{\"a\":1}";
        let raw = read_line_bounded(
            &mut reader,
            &mut buf,
            None,
            RetryPolicy::none(),
            &Recorder::disabled(),
        )
        .unwrap();
        assert_eq!(raw.consumed, 7);
        assert!(!raw.truncated);
        assert_eq!(buf, b"{\"a\":1}");
    }

    #[test]
    fn trim_ascii_bytes_trims_both_ends() {
        assert_eq!(trim_ascii_bytes(b"  {} \r\n"), b"{}");
        assert_eq!(trim_ascii_bytes(b"\t\n "), b"");
        assert_eq!(trim_ascii_bytes(b""), b"");
    }
}
