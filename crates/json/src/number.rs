//! JSON numbers.
//!
//! JSON does not distinguish integers from floating-point values, but
//! retaining the distinction matters for faithful round-tripping of the
//! datasets (a GitHub `id` must not come back as `1.2345678e7`). The paper's
//! type language has a single `Num` basic type, so the distinction is
//! invisible to inference — it lives entirely in this substrate.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A JSON number: either a 64-bit signed integer or an IEEE 754 double.
///
/// Integers outside the `i64` range are stored as doubles, mirroring what
/// most JSON implementations (including Json4s used by the paper) do.
///
/// Unlike `f64`, `Number` implements [`Eq`], [`Ord`] and [`Hash`]: NaN is
/// canonicalised and compares equal to itself and greater than every other
/// value, so numbers can be used in hash-based distinct-type counting.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// An integer that fits in `i64`.
    Int(i64),
    /// Any other finite double (and, defensively, NaN/inf from in-memory
    /// construction; the parser never produces non-finite values).
    Float(f64),
}

impl Number {
    /// The numeric value as `f64`, lossy for very large integers.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `i64` if it is an integer (including floats with zero
    /// fractional part that fit).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }

    /// Whether this number was stored as an integer.
    pub fn is_int(&self) -> bool {
        matches!(self, Number::Int(_))
    }

    /// Canonical form used by `Eq`/`Ord`/`Hash`: integral floats are folded
    /// into integers so that `1.0 == 1`.
    fn canonical(&self) -> CanonicalNumber {
        match *self {
            Number::Int(i) => CanonicalNumber::Int(i),
            Number::Float(f) => {
                if f.is_nan() {
                    CanonicalNumber::Nan
                } else if f == 0.0 {
                    // fold -0.0 into +0.0
                    CanonicalNumber::Int(0)
                } else if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    CanonicalNumber::Int(f as i64)
                } else {
                    CanonicalNumber::Float(f.to_bits())
                }
            }
        }
    }
}

#[derive(PartialEq, Eq, Hash)]
enum CanonicalNumber {
    Int(i64),
    Float(u64),
    Nan,
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.canonical() == other.canonical()
    }
}

impl Eq for Number {}

impl Hash for Number {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canonical().hash(state);
    }
}

impl PartialOrd for Number {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Number {
    fn cmp(&self, other: &Self) -> Ordering {
        use Number::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            _ => {
                let (a, b) = (self.as_f64(), other.as_f64());
                // Total order: NaN sorts last and equals itself.
                match (a.is_nan(), b.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    (false, false) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
                }
            }
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) => {
                if x.is_nan() || x.is_infinite() {
                    // JSON has no representation for these; emit null like
                    // most serializers do.
                    write!(f, "null")
                } else if x == x.trunc() && x.abs() < 1e15 {
                    // Keep a trailing `.0` so the value re-parses as it was
                    // constructed (a float).
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

impl From<i64> for Number {
    fn from(i: i64) -> Self {
        Number::Int(i)
    }
}

impl From<i32> for Number {
    fn from(i: i32) -> Self {
        Number::Int(i64::from(i))
    }
}

impl From<u32> for Number {
    fn from(i: u32) -> Self {
        Number::Int(i64::from(i))
    }
}

impl From<f64> for Number {
    fn from(f: f64) -> Self {
        Number::Float(f)
    }
}

/// Parse the decimal text of a JSON number (already validated against the
/// RFC 8259 grammar by the lexer) into a [`Number`].
///
/// Integers that fit in `i64` stay exact; everything else goes through
/// `f64` parsing.
pub fn parse_decimal(text: &str) -> Option<Number> {
    let looks_integral = !text.bytes().any(|b| matches!(b, b'.' | b'e' | b'E'));
    if looks_integral {
        if let Ok(i) = text.parse::<i64>() {
            return Some(Number::Int(i));
        }
        // Falls through for integers wider than i64.
    }
    match text.parse::<f64>() {
        Ok(f) if f.is_finite() => Some(Number::Float(f)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(n: &Number) -> u64 {
        let mut h = DefaultHasher::new();
        n.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_equality_folds() {
        assert_eq!(Number::Int(1), Number::Float(1.0));
        assert_eq!(hash_of(&Number::Int(1)), hash_of(&Number::Float(1.0)));
    }

    #[test]
    fn negative_zero_equals_zero() {
        assert_eq!(Number::Float(-0.0), Number::Int(0));
    }

    #[test]
    fn nan_is_self_equal_and_sorts_last() {
        let nan = Number::Float(f64::NAN);
        assert_eq!(nan, nan);
        assert_eq!(nan.cmp(&Number::Int(i64::MAX)), Ordering::Greater);
    }

    #[test]
    fn ordering_across_representations() {
        assert!(Number::Int(2) < Number::Float(2.5));
        assert!(Number::Float(-1.5) < Number::Int(0));
        assert_eq!(Number::Int(7).cmp(&Number::Float(7.0)), Ordering::Equal);
    }

    #[test]
    fn display_round_trip_friendly() {
        assert_eq!(Number::Int(42).to_string(), "42");
        assert_eq!(Number::Float(1.5).to_string(), "1.5");
        assert_eq!(Number::Float(3.0).to_string(), "3.0");
        assert_eq!(Number::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn as_i64_accepts_integral_floats() {
        assert_eq!(Number::Float(5.0).as_i64(), Some(5));
        assert_eq!(Number::Float(5.5).as_i64(), None);
        assert_eq!(Number::Int(-3).as_i64(), Some(-3));
    }

    #[test]
    fn parse_decimal_prefers_int() {
        assert_eq!(parse_decimal("123"), Some(Number::Int(123)));
        assert_eq!(parse_decimal("-7"), Some(Number::Int(-7)));
        assert!(matches!(parse_decimal("1.25"), Some(Number::Float(_))));
        assert!(matches!(parse_decimal("1e3"), Some(Number::Float(_))));
    }

    #[test]
    fn parse_decimal_wide_integer_falls_to_float() {
        let n = parse_decimal("99999999999999999999999").unwrap();
        assert!(matches!(n, Number::Float(_)));
    }

    #[test]
    fn parse_decimal_rejects_overflowing_exponent() {
        assert_eq!(parse_decimal("1e999"), None);
    }
}
