//! Parse errors with precise source positions.
//!
//! Every error produced by the [parser](crate::parse) carries a [`Span`]
//! (byte offsets plus line/column of the start) so that malformed records in
//! a multi-gigabyte NDJSON dump can be located exactly. This matters for
//! the paper's workloads: a single bad record among millions must be
//! reportable without re-scanning the input.

use std::fmt;

/// A convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// A position in the input text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Position {
    /// Byte offset from the start of the input (0-based).
    pub offset: usize,
    /// Line number (1-based).
    pub line: u32,
    /// Column number in bytes (1-based).
    pub column: u32,
}

impl Position {
    /// The position of the first byte of an input.
    pub const fn start() -> Self {
        Position {
            offset: 0,
            line: 1,
            column: 1,
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// A half-open byte range `[start, end)` in the input, with the line/column
/// of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Where the offending token starts.
    pub start: Position,
    /// Byte offset one past the end of the offending token.
    pub end: usize,
}

impl Span {
    /// A span covering a single byte at `pos`.
    pub fn point(pos: Position) -> Self {
        Span {
            start: pos,
            end: pos.offset + 1,
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start.offset)
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended in the middle of a value.
    UnexpectedEof,
    /// A byte that cannot start or continue the expected construct.
    UnexpectedByte(u8),
    /// A literal (`true`, `false`, `null`) was misspelt.
    InvalidLiteral,
    /// A number violated the RFC 8259 grammar (e.g. `01`, `1.`, `+5`).
    InvalidNumber,
    /// A number was syntactically valid but does not fit any supported
    /// representation (overflowing exponent etc.).
    NumberOutOfRange,
    /// A string contained an invalid escape sequence.
    InvalidEscape,
    /// A `\u` escape did not form a valid Unicode scalar value (lone
    /// surrogate or malformed hex digits).
    InvalidUnicodeEscape,
    /// A raw control character (U+0000..=U+001F) appeared inside a string.
    ControlCharacterInString,
    /// The input was not valid UTF-8.
    InvalidUtf8,
    /// An object contained the same key twice; the data model requires
    /// unique keys (Section 4 of the paper).
    DuplicateKey(String),
    /// Nesting exceeded the configured recursion limit.
    RecursionLimitExceeded,
    /// Extra non-whitespace input after a complete value.
    TrailingCharacters,
    /// A comma with nothing after it, e.g. `[1,]`.
    TrailingComma,
    /// A colon or comma was expected.
    ExpectedSeparator(char),
    /// An object key (a string) was expected.
    ExpectedKey,
    /// An I/O error from the underlying reader (NDJSON streaming).
    Io(String),
    /// A single record line exceeded the configured size guard
    /// (`max_line_bytes`); the payload is the configured cap.
    RecordTooLarge(usize),
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ErrorKind::UnexpectedByte(b) => {
                if b.is_ascii_graphic() {
                    write!(f, "unexpected character `{}`", *b as char)
                } else {
                    write!(f, "unexpected byte 0x{b:02x}")
                }
            }
            ErrorKind::InvalidLiteral => write!(f, "invalid literal"),
            ErrorKind::InvalidNumber => write!(f, "invalid number"),
            ErrorKind::NumberOutOfRange => write!(f, "number out of range"),
            ErrorKind::InvalidEscape => write!(f, "invalid escape sequence"),
            ErrorKind::InvalidUnicodeEscape => write!(f, "invalid \\u escape"),
            ErrorKind::ControlCharacterInString => {
                write!(f, "raw control character in string")
            }
            ErrorKind::InvalidUtf8 => write!(f, "invalid UTF-8"),
            ErrorKind::DuplicateKey(k) => write!(f, "duplicate object key {k:?}"),
            ErrorKind::RecursionLimitExceeded => write!(f, "recursion limit exceeded"),
            ErrorKind::TrailingCharacters => write!(f, "trailing characters after value"),
            ErrorKind::TrailingComma => write!(f, "trailing comma"),
            ErrorKind::ExpectedSeparator(c) => write!(f, "expected `{c}`"),
            ErrorKind::ExpectedKey => write!(f, "expected object key"),
            ErrorKind::Io(e) => write!(f, "I/O error: {e}"),
            ErrorKind::RecordTooLarge(cap) => {
                write!(f, "record exceeds the line-size guard of {cap} bytes")
            }
        }
    }
}

/// A parse error: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    kind: ErrorKind,
    span: Span,
}

impl Error {
    /// Create an error at a span.
    pub fn new(kind: ErrorKind, span: Span) -> Self {
        Error { kind, span }
    }

    /// Create an error covering the single byte at `pos`.
    pub fn at(kind: ErrorKind, pos: Position) -> Self {
        Error {
            kind,
            span: Span::point(pos),
        }
    }

    /// The error category.
    pub fn kind(&self) -> &ErrorKind {
        &self.kind
    }

    /// The source location of the error.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.span.start)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::at(ErrorKind::Io(e.to_string()), Position::start())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_display() {
        let p = Position {
            offset: 10,
            line: 2,
            column: 5,
        };
        assert_eq!(p.to_string(), "line 2, column 5");
    }

    #[test]
    fn span_point_len() {
        let s = Span::point(Position {
            offset: 3,
            line: 1,
            column: 4,
        });
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn error_display_includes_location() {
        let e = Error::at(ErrorKind::UnexpectedEof, Position::start());
        assert_eq!(e.to_string(), "unexpected end of input at line 1, column 1");
    }

    #[test]
    fn error_display_graphic_byte() {
        let e = Error::at(ErrorKind::UnexpectedByte(b'}'), Position::start());
        assert!(e.to_string().contains("unexpected character `}`"));
    }

    #[test]
    fn error_display_nongraphic_byte() {
        let e = Error::at(ErrorKind::UnexpectedByte(0x07), Position::start());
        assert!(e.to_string().contains("0x07"));
    }

    #[test]
    fn duplicate_key_names_the_key() {
        let e = Error::at(ErrorKind::DuplicateKey("id".into()), Position::start());
        assert!(e.to_string().contains("\"id\""));
    }
}
