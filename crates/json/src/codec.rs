//! Exact JSON encodings for checkpoint payloads.
//!
//! Checkpoint files (the serve daemon's crash-recovery state) are JSON
//! for debuggability, but JSON numbers travel through `f64` in this
//! workspace — fine for telemetry, not for state that must survive a
//! crash *byte-identically*. The helpers here route every integer
//! through decimal strings and every error through a tagged encoding
//! that round-trips the [`ErrorKind`] variant (unlike `to_string()`,
//! which collapses kinds into prose).

use crate::error::{Error, ErrorKind, Position, Span};
use crate::value::{Map, Value};

/// Encode a `u64` exactly (as a decimal string — JSON numbers would
/// round through `f64` above 2⁵³).
pub fn u64_to_value(n: u64) -> Value {
    Value::from(n.to_string())
}

/// Decode a [`u64_to_value`] encoding.
pub fn u64_from_value(v: &Value) -> Result<u64, String> {
    v.as_str()
        .ok_or_else(|| "expected a decimal string".to_string())?
        .parse()
        .map_err(|e| format!("bad u64: {e}"))
}

/// Decode an optional field: absent or `null` → `None`.
pub fn opt_u64_from_value(v: Option<&Value>) -> Result<Option<u64>, String> {
    match v {
        None | Some(Value::Null) => Ok(None),
        Some(v) => u64_from_value(v).map(Some),
    }
}

/// Encode a parse [`Error`] losslessly: variant tag, payload, and the
/// full span.
pub fn error_to_value(error: &Error) -> Value {
    let (kind, arg) = match error.kind() {
        ErrorKind::UnexpectedEof => ("UnexpectedEof", None),
        ErrorKind::UnexpectedByte(b) => ("UnexpectedByte", Some(b.to_string())),
        ErrorKind::InvalidLiteral => ("InvalidLiteral", None),
        ErrorKind::InvalidNumber => ("InvalidNumber", None),
        ErrorKind::NumberOutOfRange => ("NumberOutOfRange", None),
        ErrorKind::InvalidEscape => ("InvalidEscape", None),
        ErrorKind::InvalidUnicodeEscape => ("InvalidUnicodeEscape", None),
        ErrorKind::ControlCharacterInString => ("ControlCharacterInString", None),
        ErrorKind::InvalidUtf8 => ("InvalidUtf8", None),
        ErrorKind::DuplicateKey(k) => ("DuplicateKey", Some(k.clone())),
        ErrorKind::RecursionLimitExceeded => ("RecursionLimitExceeded", None),
        ErrorKind::TrailingCharacters => ("TrailingCharacters", None),
        ErrorKind::TrailingComma => ("TrailingComma", None),
        ErrorKind::ExpectedSeparator(c) => ("ExpectedSeparator", Some(c.to_string())),
        ErrorKind::ExpectedKey => ("ExpectedKey", None),
        ErrorKind::Io(msg) => ("Io", Some(msg.clone())),
        ErrorKind::RecordTooLarge(cap) => ("RecordTooLarge", Some(cap.to_string())),
    };
    let span = error.span();
    let mut obj = Map::new();
    obj.insert("kind", Value::from(kind));
    if let Some(arg) = arg {
        obj.insert("arg", Value::from(arg));
    }
    obj.insert("offset", u64_to_value(span.start.offset as u64));
    obj.insert("line", u64_to_value(u64::from(span.start.line)));
    obj.insert("col", u64_to_value(u64::from(span.start.column)));
    obj.insert("end", u64_to_value(span.end as u64));
    Value::Object(obj)
}

/// Decode an [`error_to_value`] encoding back to the exact [`Error`].
pub fn error_from_value(v: &Value) -> Result<Error, String> {
    let kind_name = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| "error encoding missing `kind`".to_string())?;
    let arg = || {
        v.get("arg")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("error kind {kind_name} missing `arg`"))
    };
    let kind = match kind_name {
        "UnexpectedEof" => ErrorKind::UnexpectedEof,
        "UnexpectedByte" => {
            ErrorKind::UnexpectedByte(arg()?.parse().map_err(|e| format!("bad byte: {e}"))?)
        }
        "InvalidLiteral" => ErrorKind::InvalidLiteral,
        "InvalidNumber" => ErrorKind::InvalidNumber,
        "NumberOutOfRange" => ErrorKind::NumberOutOfRange,
        "InvalidEscape" => ErrorKind::InvalidEscape,
        "InvalidUnicodeEscape" => ErrorKind::InvalidUnicodeEscape,
        "ControlCharacterInString" => ErrorKind::ControlCharacterInString,
        "InvalidUtf8" => ErrorKind::InvalidUtf8,
        "DuplicateKey" => ErrorKind::DuplicateKey(arg()?.to_string()),
        "RecursionLimitExceeded" => ErrorKind::RecursionLimitExceeded,
        "TrailingCharacters" => ErrorKind::TrailingCharacters,
        "TrailingComma" => ErrorKind::TrailingComma,
        "ExpectedSeparator" => ErrorKind::ExpectedSeparator(
            arg()?
                .chars()
                .next()
                .ok_or_else(|| "empty separator".to_string())?,
        ),
        "ExpectedKey" => ErrorKind::ExpectedKey,
        "Io" => ErrorKind::Io(arg()?.to_string()),
        "RecordTooLarge" => {
            ErrorKind::RecordTooLarge(arg()?.parse().map_err(|e| format!("bad cap: {e}"))?)
        }
        other => return Err(format!("unknown error kind {other:?}")),
    };
    let field = |name: &str| {
        v.get(name)
            .ok_or_else(|| format!("error encoding missing `{name}`"))
            .and_then(u64_from_value)
    };
    Ok(Error::new(
        kind,
        Span {
            start: Position {
                offset: field("offset")? as usize,
                line: field("line")? as u32,
                column: field("col")? as u32,
            },
            end: field("end")? as usize,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_value;

    #[test]
    fn u64_round_trips_above_f64_precision() {
        for n in [0, 1, u64::MAX, (1 << 53) + 1] {
            assert_eq!(u64_from_value(&u64_to_value(n)).unwrap(), n);
        }
        assert!(u64_from_value(&Value::from(5)).is_err());
        assert_eq!(opt_u64_from_value(None).unwrap(), None);
        assert_eq!(opt_u64_from_value(Some(&Value::Null)).unwrap(), None);
        assert_eq!(opt_u64_from_value(Some(&u64_to_value(9))).unwrap(), Some(9));
    }

    #[test]
    fn every_error_kind_round_trips() {
        let span = Span {
            start: Position {
                offset: 17,
                line: 3,
                column: 9,
            },
            end: 21,
        };
        let kinds = [
            ErrorKind::UnexpectedEof,
            ErrorKind::UnexpectedByte(0x07),
            ErrorKind::InvalidLiteral,
            ErrorKind::InvalidNumber,
            ErrorKind::NumberOutOfRange,
            ErrorKind::InvalidEscape,
            ErrorKind::InvalidUnicodeEscape,
            ErrorKind::ControlCharacterInString,
            ErrorKind::InvalidUtf8,
            ErrorKind::DuplicateKey("id".into()),
            ErrorKind::RecursionLimitExceeded,
            ErrorKind::TrailingCharacters,
            ErrorKind::TrailingComma,
            ErrorKind::ExpectedSeparator(':'),
            ErrorKind::ExpectedKey,
            ErrorKind::Io("disk on fire".into()),
            ErrorKind::RecordTooLarge(65536),
        ];
        for kind in kinds {
            let original = Error::new(kind, span);
            let value = error_to_value(&original);
            // The encoding survives a serialize/parse cycle too.
            let reparsed = parse_value(&value.to_string()).unwrap();
            assert_eq!(error_from_value(&reparsed).unwrap(), original);
        }
    }

    #[test]
    fn real_parser_errors_round_trip() {
        for input in ["{broken", "[1,]", "nul", "{\"a\":1,\"a\":2}"] {
            let original = parse_value(input).unwrap_err();
            let back = error_from_value(&error_to_value(&original)).unwrap();
            assert_eq!(back, original);
        }
    }

    #[test]
    fn malformed_encodings_error_out() {
        for bad in ["{}", "{\"kind\":\"Nope\"}", "{\"kind\":\"Io\"}"] {
            let v = parse_value(bad).unwrap();
            assert!(error_from_value(&v).is_err(), "{bad}");
        }
    }
}
