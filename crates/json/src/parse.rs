//! A strict, span-carrying recursive-descent parser for RFC 8259 JSON.
//!
//! Design notes:
//!
//! * **Byte-level.** The hot loop operates on `&[u8]`; UTF-8 validation is
//!   confined to string contents, which is where non-ASCII bytes can occur.
//! * **Strictness.** Duplicate keys are errors by default because the
//!   paper's data model requires well-formed records; see
//!   [`ParserOptions::allow_duplicate_keys`].
//! * **Bounded recursion.** Nesting depth is limited (default 512) so a
//!   hostile input cannot overflow the stack — the paper's pipelines ingest
//!   uncontrolled remote data (Section 1).

use crate::error::{Error, ErrorKind, Position, Result, Span};
use crate::number;
use crate::value::{Map, Value};
use std::borrow::Cow;

/// Knobs for the parser.
#[derive(Debug, Clone)]
pub struct ParserOptions {
    /// Maximum nesting depth of arrays/objects. Default 512.
    pub max_depth: usize,
    /// Keep the last binding instead of erroring when an object repeats a
    /// key. Default `false` (strict).
    pub allow_duplicate_keys: bool,
}

impl Default for ParserOptions {
    fn default() -> Self {
        ParserOptions {
            max_depth: 512,
            allow_duplicate_keys: false,
        }
    }
}

/// Parse a complete JSON text into a [`Value`].
///
/// The entire input must be consumed (modulo trailing whitespace).
pub fn parse_value(input: &str) -> Result<Value> {
    Parser::new(input.as_bytes()).parse_complete()
}

/// The parser state over a byte slice.
pub struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
    depth: usize,
    options: ParserOptions,
    /// Scratch buffer reused across string parses to avoid re-allocation.
    scratch: Vec<u8>,
}

impl<'a> Parser<'a> {
    /// Create a parser with default options.
    pub fn new(input: &'a [u8]) -> Self {
        Self::with_options(input, ParserOptions::default())
    }

    /// Create a parser with explicit options.
    pub fn with_options(input: &'a [u8], options: ParserOptions) -> Self {
        Parser {
            input,
            pos: 0,
            line: 1,
            line_start: 0,
            depth: 0,
            options,
            scratch: Vec::new(),
        }
    }

    /// Parse one value and require that only whitespace follows.
    pub fn parse_complete(mut self) -> Result<Value> {
        let v = self.parse_one()?;
        self.skip_whitespace();
        if self.pos < self.input.len() {
            return Err(self.err_here(ErrorKind::TrailingCharacters));
        }
        Ok(v)
    }

    /// Parse one value, leaving the cursor after it (used by NDJSON and by
    /// concatenated-JSON streams).
    pub fn parse_one(&mut self) -> Result<Value> {
        self.skip_whitespace();
        self.parse_value_inner()
    }

    /// Current position (for error reporting by callers).
    pub fn position(&self) -> Position {
        Position {
            offset: self.pos,
            line: self.line,
            column: (self.pos - self.line_start + 1) as u32,
        }
    }

    // ---- crate-internal hooks for the event parser ---------------------

    /// Skip whitespace (event-parser hook).
    pub(crate) fn skip_ws_public(&mut self) {
        self.skip_whitespace();
    }

    /// Peek the next byte (event-parser hook).
    pub(crate) fn peek_public(&self) -> Option<u8> {
        self.peek()
    }

    /// Consume one byte (event-parser hook).
    pub(crate) fn bump_public(&mut self) -> Option<u8> {
        self.bump()
    }

    /// Whether the cursor is at the end of input.
    pub(crate) fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Parse a string token, borrowing from the input when it contains no
    /// escapes (event-parser hook); cursor must be on `"`.
    ///
    /// This is the event fast path's edge over the tree parser: string
    /// *contents* are only copied when an escape forces unescaping, so a
    /// type fold that discards them never pays for the allocation.
    #[inline]
    pub(crate) fn parse_string_raw(&mut self) -> Result<Cow<'a, str>> {
        let start = self.position();
        self.bump(); // opening quote
        let run_start = self.pos;
        // Fast path: scan for the closing quote; no escape means the raw
        // slice is the string.
        loop {
            match self.peek() {
                Some(b'"') => {
                    let raw = &self.input[run_start..self.pos];
                    self.pos += 1; // closing quote (never a newline)
                    return match std::str::from_utf8(raw) {
                        Ok(s) => Ok(Cow::Borrowed(s)),
                        Err(_) => Err(self.err_span(ErrorKind::InvalidUtf8, start)),
                    };
                }
                Some(b'\\') => break,
                Some(0x00..=0x1f) => return Err(self.err_here(ErrorKind::ControlCharacterInString)),
                Some(_) => self.pos += 1,
                None => return Err(self.err_here(ErrorKind::UnexpectedEof)),
            }
        }
        // Slow path: an escape — copy the clean prefix and continue with
        // the unescaping loop of `parse_string`.
        self.scratch.clear();
        self.scratch
            .extend_from_slice(&self.input[run_start..self.pos]);
        self.pos += 1; // the backslash
        self.parse_escape(start)?;
        loop {
            let run = self.pos;
            while let Some(&b) = self.input.get(self.pos) {
                match b {
                    b'"' | b'\\' => break,
                    0x00..=0x1f => return Err(self.err_here(ErrorKind::ControlCharacterInString)),
                    _ => self.pos += 1,
                }
            }
            self.scratch.extend_from_slice(&self.input[run..self.pos]);
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => self.parse_escape(start)?,
                Some(_) => unreachable!("loop breaks only on quote or backslash"),
                None => return Err(self.err_here(ErrorKind::UnexpectedEof)),
            }
        }
        match std::str::from_utf8(&self.scratch) {
            Ok(s) => Ok(Cow::Owned(s.to_owned())),
            Err(_) => Err(self.err_span(ErrorKind::InvalidUtf8, start)),
        }
    }

    /// Parse a scalar value (literal, number or string) into an event
    /// (event-parser hook). The cursor must not be on `{` or `[`.
    pub(crate) fn parse_scalar_public(&mut self) -> Result<crate::events::Event<'a>> {
        use crate::events::Event;
        match self.peek() {
            None => Err(self.err_here(ErrorKind::UnexpectedEof)),
            Some(b'"') => Ok(Event::String(self.parse_string_raw()?)),
            Some(b'n') => {
                self.parse_literal(b"null", Value::Null)?;
                Ok(Event::Null)
            }
            Some(b't') => {
                self.parse_literal(b"true", Value::Bool(true))?;
                Ok(Event::Bool(true))
            }
            Some(b'f') => {
                self.parse_literal(b"false", Value::Bool(false))?;
                Ok(Event::Bool(false))
            }
            Some(b'-' | b'0'..=b'9') => match self.parse_number()? {
                Value::Number(n) => Ok(Event::Number(n)),
                _ => unreachable!("parse_number returns a number"),
            },
            Some(b'{' | b'[') => unreachable!("parse_scalar_public called on a container"),
            Some(b) => Err(self.err_here(ErrorKind::UnexpectedByte(b))),
        }
    }

    fn err_here(&self, kind: ErrorKind) -> Error {
        Error::at(kind, self.position())
    }

    fn err_span(&self, kind: ErrorKind, start: Position) -> Error {
        Error::new(
            kind,
            Span {
                start,
                end: self.pos,
            },
        )
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    self.line_start = self.pos;
                }
                _ => break,
            }
        }
    }

    fn parse_value_inner(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(self.err_here(ErrorKind::UnexpectedEof)),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal(b"true", Value::Bool(true)),
            Some(b'f') => self.parse_literal(b"false", Value::Bool(false)),
            Some(b'n') => self.parse_literal(b"null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.err_here(ErrorKind::UnexpectedByte(b))),
        }
    }

    fn parse_literal(&mut self, word: &[u8], value: Value) -> Result<Value> {
        let start = self.position();
        for &expected in word {
            match self.bump() {
                Some(b) if b == expected => {}
                Some(_) => return Err(self.err_span(ErrorKind::InvalidLiteral, start)),
                None => return Err(self.err_here(ErrorKind::UnexpectedEof)),
            }
        }
        Ok(value)
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > self.options.max_depth {
            return Err(self.err_here(ErrorKind::RecursionLimitExceeded));
        }
        Ok(())
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.enter()?;
        self.bump(); // '{'
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.bump();
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key_start = self.position();
            if self.peek() != Some(b'"') {
                return Err(match self.peek() {
                    None => self.err_here(ErrorKind::UnexpectedEof),
                    Some(_) => self.err_here(ErrorKind::ExpectedKey),
                });
            }
            let key = self.parse_string()?;
            self.skip_whitespace();
            match self.bump() {
                Some(b':') => {}
                Some(_) => return Err(self.err_here(ErrorKind::ExpectedSeparator(':'))),
                None => return Err(self.err_here(ErrorKind::UnexpectedEof)),
            }
            self.skip_whitespace();
            let value = self.parse_value_inner()?;
            if map.contains_key(&key) {
                if !self.options.allow_duplicate_keys {
                    return Err(self.err_span(ErrorKind::DuplicateKey(key), key_start));
                }
                map.insert(key, value);
            } else {
                map.insert_unchecked(key, value);
            }
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => {
                    self.skip_whitespace();
                    if self.peek() == Some(b'}') {
                        return Err(self.err_here(ErrorKind::TrailingComma));
                    }
                }
                Some(b'}') => break,
                Some(_) => return Err(self.err_here(ErrorKind::ExpectedSeparator(','))),
                None => return Err(self.err_here(ErrorKind::UnexpectedEof)),
            }
        }
        self.depth -= 1;
        Ok(Value::Object(map))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.enter()?;
        self.bump(); // '['
        let mut elems = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.bump();
            self.depth -= 1;
            return Ok(Value::Array(elems));
        }
        loop {
            self.skip_whitespace();
            elems.push(self.parse_value_inner()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => {
                    self.skip_whitespace();
                    if self.peek() == Some(b']') {
                        return Err(self.err_here(ErrorKind::TrailingComma));
                    }
                }
                Some(b']') => break,
                Some(_) => return Err(self.err_here(ErrorKind::ExpectedSeparator(','))),
                None => return Err(self.err_here(ErrorKind::UnexpectedEof)),
            }
        }
        self.depth -= 1;
        Ok(Value::Array(elems))
    }

    fn parse_string(&mut self) -> Result<String> {
        let start = self.position();
        self.bump(); // opening quote
        self.scratch.clear();
        // Fast path: scan a run of plain bytes, copy in one go.
        loop {
            let run_start = self.pos;
            while let Some(&b) = self.input.get(self.pos) {
                match b {
                    b'"' | b'\\' => break,
                    0x00..=0x1f => return Err(self.err_here(ErrorKind::ControlCharacterInString)),
                    _ => self.pos += 1,
                }
            }
            self.scratch
                .extend_from_slice(&self.input[run_start..self.pos]);
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => self.parse_escape(start)?,
                Some(_) => unreachable!("loop breaks only on quote or backslash"),
                None => return Err(self.err_here(ErrorKind::UnexpectedEof)),
            }
        }
        match std::str::from_utf8(&self.scratch) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => Err(self.err_span(ErrorKind::InvalidUtf8, start)),
        }
    }

    fn parse_escape(&mut self, string_start: Position) -> Result<()> {
        match self.bump() {
            Some(b'"') => self.scratch.push(b'"'),
            Some(b'\\') => self.scratch.push(b'\\'),
            Some(b'/') => self.scratch.push(b'/'),
            Some(b'b') => self.scratch.push(0x08),
            Some(b'f') => self.scratch.push(0x0c),
            Some(b'n') => self.scratch.push(b'\n'),
            Some(b'r') => self.scratch.push(b'\r'),
            Some(b't') => self.scratch.push(b'\t'),
            Some(b'u') => {
                let cp = self.parse_hex4(string_start)?;
                let ch = if (0xD800..=0xDBFF).contains(&cp) {
                    // High surrogate: a low surrogate must follow.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err_span(ErrorKind::InvalidUnicodeEscape, string_start));
                    }
                    let low = self.parse_hex4(string_start)?;
                    if !(0xDC00..=0xDFFF).contains(&low) {
                        return Err(self.err_span(ErrorKind::InvalidUnicodeEscape, string_start));
                    }
                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(combined).ok_or_else(|| {
                        self.err_span(ErrorKind::InvalidUnicodeEscape, string_start)
                    })?
                } else if (0xDC00..=0xDFFF).contains(&cp) {
                    // Lone low surrogate.
                    return Err(self.err_span(ErrorKind::InvalidUnicodeEscape, string_start));
                } else {
                    char::from_u32(cp).ok_or_else(|| {
                        self.err_span(ErrorKind::InvalidUnicodeEscape, string_start)
                    })?
                };
                let mut buf = [0u8; 4];
                self.scratch
                    .extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
            }
            Some(_) => return Err(self.err_span(ErrorKind::InvalidEscape, string_start)),
            None => return Err(self.err_here(ErrorKind::UnexpectedEof)),
        }
        Ok(())
    }

    fn parse_hex4(&mut self, string_start: Position) -> Result<u32> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                Some(_) => return Err(self.err_span(ErrorKind::InvalidUnicodeEscape, string_start)),
                None => return Err(self.err_here(ErrorKind::UnexpectedEof)),
            };
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.position();
        let begin = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err_span(ErrorKind::InvalidNumber, start));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err_span(ErrorKind::InvalidNumber, start)),
        }
        // Fraction.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err_span(ErrorKind::InvalidNumber, start));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err_span(ErrorKind::InvalidNumber, start));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.input[begin..self.pos]).expect("number bytes are ASCII");
        match number::parse_decimal(text) {
            Some(n) => Ok(Value::Number(n)),
            None => Err(self.err_span(ErrorKind::NumberOutOfRange, start)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn kind_of(input: &str) -> ErrorKind {
        parse_value(input).unwrap_err().kind().clone()
    }

    #[test]
    fn scalars() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("false").unwrap(), Value::Bool(false));
        assert_eq!(parse_value("0").unwrap(), json!(0));
        assert_eq!(parse_value("-12").unwrap(), json!(-12));
        assert_eq!(parse_value("1.5e2").unwrap(), json!(150.0));
        assert_eq!(parse_value("\"hi\"").unwrap(), json!("hi"));
    }

    #[test]
    fn nested_structure() {
        let v = parse_value(r#"{"a": [1, {"b": null}], "c": {"d": [true, false]}}"#).unwrap();
        assert_eq!(v, json!({"a": [1, {"b": null}], "c": {"d": [true, false]}}));
    }

    #[test]
    fn whitespace_everywhere() {
        let v = parse_value(" \t\r\n { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v, json!({"a": [1, 2]}));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse_value("{}").unwrap(), json!({}));
        assert_eq!(parse_value("[]").unwrap(), json!([]));
        assert_eq!(parse_value("[{}]").unwrap(), json!([{}]));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse_value(r#""a\"b\\c\/d\b\f\n\r\t""#).unwrap(),
            json!("a\"b\\c/d\u{8}\u{c}\n\r\t")
        );
        assert_eq!(parse_value(r#""A""#).unwrap(), json!("A"));
        assert_eq!(parse_value(r#""é""#).unwrap(), json!("é"));
        // Surrogate pair: U+1F600.
        assert_eq!(parse_value(r#""😀""#).unwrap(), json!("😀"));
    }

    #[test]
    fn raw_utf8_in_strings() {
        assert_eq!(parse_value("\"caffè\"").unwrap(), json!("caffè"));
    }

    #[test]
    fn lone_surrogates_rejected() {
        assert_eq!(kind_of(r#""\ud800""#), ErrorKind::InvalidUnicodeEscape);
        assert_eq!(kind_of(r#""\udc00""#), ErrorKind::InvalidUnicodeEscape);
        assert_eq!(kind_of(r#""\ud800A""#), ErrorKind::InvalidUnicodeEscape);
    }

    #[test]
    fn control_chars_rejected() {
        assert_eq!(kind_of("\"a\x01b\""), ErrorKind::ControlCharacterInString);
    }

    #[test]
    fn bad_escapes_rejected() {
        assert_eq!(kind_of(r#""\x""#), ErrorKind::InvalidEscape);
        assert_eq!(kind_of(r#""\u00g0""#), ErrorKind::InvalidUnicodeEscape);
    }

    #[test]
    fn number_grammar_enforced() {
        assert_eq!(kind_of("01"), ErrorKind::InvalidNumber);
        assert_eq!(kind_of("-"), ErrorKind::InvalidNumber);
        assert_eq!(kind_of("1."), ErrorKind::InvalidNumber);
        assert_eq!(kind_of("1e"), ErrorKind::InvalidNumber);
        assert_eq!(kind_of("1e+"), ErrorKind::InvalidNumber);
        assert_eq!(kind_of("+5"), ErrorKind::UnexpectedByte(b'+'));
        assert_eq!(kind_of(".5"), ErrorKind::UnexpectedByte(b'.'));
    }

    #[test]
    fn huge_exponent_out_of_range() {
        assert_eq!(kind_of("1e999"), ErrorKind::NumberOutOfRange);
    }

    #[test]
    fn misspelt_literals() {
        assert_eq!(kind_of("nul"), ErrorKind::UnexpectedEof);
        assert_eq!(kind_of("nulL"), ErrorKind::InvalidLiteral);
        assert_eq!(kind_of("truth"), ErrorKind::InvalidLiteral);
    }

    #[test]
    fn structural_errors() {
        assert_eq!(kind_of("{"), ErrorKind::UnexpectedEof);
        assert_eq!(kind_of("{\"a\" 1}"), ErrorKind::ExpectedSeparator(':'));
        assert_eq!(kind_of("[1 2]"), ErrorKind::ExpectedSeparator(','));
        assert_eq!(kind_of("[1,]"), ErrorKind::TrailingComma);
        assert_eq!(kind_of("{\"a\":1,}"), ErrorKind::TrailingComma);
        assert_eq!(kind_of("{1: 2}"), ErrorKind::ExpectedKey);
        assert_eq!(kind_of("[1] x"), ErrorKind::TrailingCharacters);
        assert_eq!(kind_of(""), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn duplicate_keys_strict_by_default() {
        assert_eq!(
            kind_of(r#"{"a": 1, "a": 2}"#),
            ErrorKind::DuplicateKey("a".to_string())
        );
    }

    #[test]
    fn duplicate_keys_lenient_mode() {
        let opts = ParserOptions {
            allow_duplicate_keys: true,
            ..Default::default()
        };
        let v = Parser::with_options(br#"{"a": 1, "a": 2}"#, opts)
            .parse_complete()
            .unwrap();
        assert_eq!(v, json!({"a": 2}));
    }

    #[test]
    fn recursion_limit() {
        let deep: String = std::iter::repeat_n('[', 600)
            .chain(std::iter::repeat_n(']', 600))
            .collect();
        assert_eq!(kind_of(&deep), ErrorKind::RecursionLimitExceeded);

        let opts = ParserOptions {
            max_depth: 8,
            ..Default::default()
        };
        let shallow = "[[[[[[[[[0]]]]]]]]]"; // depth 9
        assert!(Parser::with_options(shallow.as_bytes(), opts)
            .parse_complete()
            .is_err());
    }

    #[test]
    fn error_positions_are_accurate() {
        let err = parse_value("{\n  \"a\": tru\n}").unwrap_err();
        assert_eq!(err.span().start.line, 2);
        assert_eq!(err.span().start.column, 8);
    }

    #[test]
    fn parse_one_leaves_cursor_for_streams() {
        let mut p = Parser::new(b"{\"a\":1} {\"b\":2}");
        assert_eq!(p.parse_one().unwrap(), json!({"a": 1}));
        assert_eq!(p.parse_one().unwrap(), json!({"b": 2}));
        assert!(matches!(
            p.parse_one().unwrap_err().kind(),
            ErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn integer_precision_preserved() {
        let v = parse_value("9007199254740993").unwrap(); // 2^53 + 1
        assert_eq!(v.as_i64(), Some(9007199254740993));
    }
}
