//! The JSON value tree — the data model of Figure 2 in the paper.
//!
//! A value is a basic value (null, boolean, number, string), a *record*
//! (called "object" in RFC 8259: a set of key/value pairs with unique keys)
//! or an *array* (an ordered list of values). Records are identified up to
//! field order, exactly as Section 4 of the paper prescribes ("we identify
//! two records that only differ in the order of their fields"); this is
//! implemented by [`Map`]'s order-insensitive `Eq`/`Hash`.

use crate::number::Number;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A JSON record: key/value pairs with unique keys.
///
/// Insertion order is preserved for serialization (so generated datasets
/// look natural), but equality and hashing are order-insensitive, matching
/// the paper's set semantics for records.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty record (`ERec` in the paper's abstract syntax).
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// An empty record with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Map {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a field. Returns the previous value if the key was present
    /// (the key-uniqueness invariant is maintained by replacement).
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(std::mem::replace(&mut slot.1, value))
        } else {
            self.entries.push((key, value));
            None
        }
    }

    /// Insert a field that is known not to be present yet.
    ///
    /// This is the fast path used by the parser (which has already checked
    /// uniqueness) and by generators that construct keys in order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the key is already present.
    pub fn insert_unchecked(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let key = key.into();
        debug_assert!(
            !self.contains_key(&key),
            "insert_unchecked with duplicate key {key:?}"
        );
        self.entries.push((key, value.into()));
    }

    /// Look up a field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Remove a field by key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterate over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    fn sorted_entries(&self) -> Vec<(&str, &Value)> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl Eq for Map {}

impl Hash for Map {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Order-insensitive: hash fields in sorted-key order.
        for (k, v) in self.sorted_entries() {
            k.hash(state);
            v.hash(state);
        }
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON value (Figure 2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list of values.
    Array(Vec<Value>),
    /// A record with unique keys.
    Object(Map),
}

impl Value {
    /// Whether this is a basic (atomic) value in the paper's sense.
    pub fn is_basic(&self) -> bool {
        !matches!(self, Value::Array(_) | Value::Object(_))
    }

    /// Convenience record-field lookup; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Convenience array indexing; `None` for non-arrays.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(idx),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `i64`, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Number of nodes in the value tree (each scalar, each array, each
    /// object and each field counts one). The analogue of the paper's type
    /// size metric, applied to values; used by dataset statistics.
    pub fn tree_size(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) | Value::Number(_) | Value::String(_) => 1,
            Value::Array(a) => 1 + a.iter().map(Value::tree_size).sum::<usize>(),
            Value::Object(m) => 1 + m.values().map(|v| 1 + v.tree_size()).sum::<usize>(),
        }
    }

    /// Maximum nesting depth: scalars have depth 1, `[]`/`{}` have depth 1,
    /// a record of scalars depth 2, etc. The paper reports nesting depths
    /// per dataset (GitHub ≤4, Twitter ≤3, Wikidata ≤6, NYTimes ≤7).
    pub fn depth(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) | Value::Number(_) | Value::String(_) => 1,
            Value::Array(a) => 1 + a.iter().map(Value::depth).max().unwrap_or(0),
            Value::Object(m) => 1 + m.values().map(Value::depth).max().unwrap_or(0),
        }
    }
}

impl fmt::Display for Value {
    /// Compact serialization (same output as [`crate::ser::to_string`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::ser::write_compact(self, f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Number(Number::Int(i))
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Number(Number::Int(i64::from(i)))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Number(Number::Int(i64::from(i)))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::Float(f))
    }
}

impl From<Number> for Value {
    fn from(n: Number) -> Self {
        Value::Number(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Build a [`Value`] with a JSON-like literal syntax.
///
/// ```
/// use typefuse_json::{json, Value};
/// let v = json!({"a": 1, "b": [true, null, "x"]});
/// assert_eq!(v.get("a"), Some(&Value::from(1)));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $elem:tt ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $( $key:tt : $val:tt ),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key, $crate::json!($val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn map_insert_get_remove() {
        let mut m = Map::new();
        assert!(m.insert("a", 1).is_none());
        assert_eq!(m.insert("a", 2), Some(Value::from(1)));
        assert_eq!(m.get("a"), Some(&Value::from(2)));
        assert_eq!(m.remove("a"), Some(Value::from(2)));
        assert!(m.is_empty());
    }

    #[test]
    fn map_equality_is_order_insensitive() {
        let a = json!({"x": 1, "y": 2});
        let b = json!({"y": 2, "x": 1});
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn map_inequality_on_value() {
        assert_ne!(json!({"x": 1}), json!({"x": 2}));
        assert_ne!(json!({"x": 1}), json!({"x": 1, "y": 2}));
    }

    #[test]
    fn array_equality_is_order_sensitive() {
        assert_ne!(json!([1, 2]), json!([2, 1]));
        assert_eq!(json!([1, 2]), json!([1, 2]));
    }

    #[test]
    fn tree_size_counts_fields() {
        // object (1) + 2 fields (2) + 2 scalars (2) = 5
        assert_eq!(json!({"a": 1, "b": 2}).tree_size(), 5);
        // array (1) + 3 scalars = 4
        assert_eq!(json!([1, 2, 3]).tree_size(), 4);
        assert_eq!(json!(null).tree_size(), 1);
    }

    #[test]
    fn depth_matches_paper_convention() {
        assert_eq!(json!(1).depth(), 1);
        assert_eq!(json!({}).depth(), 1);
        assert_eq!(json!({"a": 1}).depth(), 2);
        assert_eq!(json!({"a": {"b": [1]}}).depth(), 4);
    }

    #[test]
    fn accessors() {
        let v = json!({"s": "hi", "n": 3, "f": 2.5, "b": true, "a": [1], "z": null});
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().get_index(0), Some(&Value::from(1)));
        assert!(v.get("z").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn insert_unchecked_appends() {
        let mut m = Map::new();
        m.insert_unchecked("k1", 1);
        m.insert_unchecked("k2", 2);
        assert_eq!(m.keys().collect::<Vec<_>>(), vec!["k1", "k2"]);
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    #[cfg(debug_assertions)]
    fn insert_unchecked_panics_on_duplicate_in_debug() {
        let mut m = Map::new();
        m.insert_unchecked("k", 1);
        m.insert_unchecked("k", 2);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(vec![1i64, 2]), json!([1, 2]));
        assert!(matches!(Value::from("s"), Value::String(_)));
        assert!(Value::default().is_null());
    }

    #[test]
    fn map_from_iterator_deduplicates() {
        let m: Map = vec![
            ("a".to_string(), Value::from(1)),
            ("a".to_string(), Value::from(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("a"), Some(&Value::from(2)));
    }
}
