//! A pull-based (SAX-style) JSON event parser.
//!
//! The tree parser in [`crate::parse`] materialises a [`Value`]
//! per record; for schema inference that tree is immediately folded into a
//! type and thrown away. The event parser lets the inference layer build
//! the type *directly* from the token stream, skipping the intermediate
//! tree entirely — the `parsing` bench quantifies the savings.
//!
//! The grammar, strictness (duplicate keys, trailing commas, recursion
//! limit) and error reporting match the tree parser exactly; a property
//! test in this module replays the event stream into a tree and checks it
//! equals the tree parser's output.

use crate::error::{Error, ErrorKind, Position, Result};
use crate::number::Number;
use crate::parse::{Parser, ParserOptions};
use crate::value::{Map, Value};
use std::borrow::Cow;

/// One parse event.
///
/// Strings and keys borrow from the input whenever they contain no
/// escape sequences (the overwhelmingly common case), so consumers that
/// discard string contents — type inference folds `String` straight to
/// `Str` — never pay for an allocation. Call
/// [`Cow::into_owned`] when the text must outlive the input.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<'a> {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string value.
    String(Cow<'a, str>),
    /// `{` — an object begins.
    ObjectStart,
    /// An object key; always followed by that key's value events.
    Key(Cow<'a, str>),
    /// `}`.
    ObjectEnd,
    /// `[`.
    ArrayStart,
    /// `]`.
    ArrayEnd,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Container {
    Object,
    Array,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    /// Expecting a value (top level, after a key, or after `[`/`,` in an
    /// array — for arrays, `]` is also allowed when `allow_end` is set).
    AwaitValue { allow_end: bool },
    /// Expecting a key or `}` in an object.
    AwaitKey { allow_end: bool },
    /// A value just finished; expecting `,`/`}`/`]` or end of input.
    AfterValue,
    /// The top-level value completed.
    Done,
}

/// The pull parser. Iterate to receive [`Event`]s for exactly one
/// top-level JSON value; afterwards the iterator yields `None`. For
/// NDJSON streams, construct one `EventParser` per line (the layout used
/// by all the paper's datasets).
pub struct EventParser<'a> {
    parser: Parser<'a>,
    stack: Vec<Container>,
    /// Keys of every open object, flattened; a linear scan over the
    /// current object's suffix mirrors the tree parser's
    /// `Map::contains_key`, and borrowed keys make the retained copies
    /// allocation-free. One buffer for the whole record keeps it to a
    /// single growth chain instead of an alloc/free per object.
    seen_keys: Vec<Cow<'a, str>>,
    /// Index into `seen_keys` where each open object's keys begin.
    seen_starts: Vec<usize>,
    state: State,
    options: ParserOptions,
    failed: bool,
}

impl<'a> EventParser<'a> {
    /// Create with default options.
    pub fn new(input: &'a [u8]) -> Self {
        Self::with_options(input, ParserOptions::default())
    }

    /// Create with explicit options.
    pub fn with_options(input: &'a [u8], options: ParserOptions) -> Self {
        EventParser {
            parser: Parser::with_options(input, options.clone()),
            stack: Vec::new(),
            seen_keys: Vec::new(),
            seen_starts: Vec::new(),
            state: State::AwaitValue { allow_end: false },
            options,
            failed: false,
        }
    }

    /// Whether the top-level value has been fully consumed.
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// The options this parser runs with.
    pub fn options(&self) -> &ParserOptions {
        &self.options
    }

    /// Current input position (for stream chaining and error reports).
    /// Named to avoid clashing with [`Iterator::position`].
    pub fn source_position(&self) -> Position {
        self.parser.position()
    }

    /// Require only whitespace after the value (call once done).
    pub fn finish(&mut self) -> Result<()> {
        self.parser.skip_ws_public();
        if self.parser.at_end() {
            Ok(())
        } else {
            Err(Error::at(
                ErrorKind::TrailingCharacters,
                self.parser.position(),
            ))
        }
    }

    fn push_container(&mut self, c: Container) -> Result<()> {
        self.stack.push(c);
        if self.stack.len() > self.options.max_depth {
            return Err(Error::at(
                ErrorKind::RecursionLimitExceeded,
                self.parser.position(),
            ));
        }
        if c == Container::Object {
            self.seen_starts.push(self.seen_keys.len());
        }
        Ok(())
    }

    fn pop_container(&mut self) -> Option<Container> {
        let c = self.stack.pop();
        if c == Some(Container::Object) {
            let start = self.seen_starts.pop().expect("object start recorded");
            self.seen_keys.truncate(start);
        }
        self.state = if self.stack.is_empty() {
            State::Done
        } else {
            State::AfterValue
        };
        c
    }

    /// Pull the next event directly, without the [`Iterator`] adapter's
    /// per-call fuse check and `Option<Result>` rewrap. `Ok(None)` means
    /// the top-level value is complete. The hot path of the event fold.
    #[inline]
    pub fn next_event(&mut self) -> Result<Option<Event<'a>>> {
        loop {
            match self.state {
                State::Done => return Ok(None),
                State::AwaitValue { allow_end } => {
                    self.parser.skip_ws_public();
                    match self.parser.peek_public() {
                        Some(b']') if allow_end => {
                            self.parser.bump_public();
                            self.pop_container();
                            return Ok(Some(Event::ArrayEnd));
                        }
                        Some(b'{') => {
                            self.parser.bump_public();
                            self.push_container(Container::Object)?;
                            self.state = State::AwaitKey { allow_end: true };
                            return Ok(Some(Event::ObjectStart));
                        }
                        Some(b'[') => {
                            self.parser.bump_public();
                            self.push_container(Container::Array)?;
                            self.state = State::AwaitValue { allow_end: true };
                            return Ok(Some(Event::ArrayStart));
                        }
                        _ => {
                            let scalar = self.parser.parse_scalar_public()?;
                            self.state = if self.stack.is_empty() {
                                State::Done
                            } else {
                                State::AfterValue
                            };
                            return Ok(Some(scalar));
                        }
                    }
                }
                State::AwaitKey { allow_end } => {
                    self.parser.skip_ws_public();
                    match self.parser.peek_public() {
                        Some(b'}') if allow_end => {
                            self.parser.bump_public();
                            self.pop_container();
                            return Ok(Some(Event::ObjectEnd));
                        }
                        Some(b'"') => {
                            let key_start = self.parser.position();
                            let key = self.parser.parse_string_raw()?;
                            let start = *self.seen_starts.last().expect("inside an object");
                            if self.seen_keys[start..].contains(&key) {
                                if !self.options.allow_duplicate_keys {
                                    return Err(Error::at(
                                        ErrorKind::DuplicateKey(key.into_owned()),
                                        key_start,
                                    ));
                                }
                            } else {
                                self.seen_keys.push(key.clone());
                            }
                            self.parser.skip_ws_public();
                            match self.parser.bump_public() {
                                Some(b':') => {}
                                Some(_) => {
                                    return Err(Error::at(
                                        ErrorKind::ExpectedSeparator(':'),
                                        self.parser.position(),
                                    ))
                                }
                                None => {
                                    return Err(Error::at(
                                        ErrorKind::UnexpectedEof,
                                        self.parser.position(),
                                    ))
                                }
                            }
                            self.state = State::AwaitValue { allow_end: false };
                            return Ok(Some(Event::Key(key)));
                        }
                        Some(_) => {
                            return Err(Error::at(ErrorKind::ExpectedKey, self.parser.position()))
                        }
                        None => {
                            return Err(Error::at(ErrorKind::UnexpectedEof, self.parser.position()))
                        }
                    }
                }
                State::AfterValue => {
                    self.parser.skip_ws_public();
                    let top = *self.stack.last().expect("AfterValue implies container");
                    match (self.parser.bump_public(), top) {
                        (Some(b','), Container::Object) => {
                            self.state = State::AwaitKey { allow_end: false };
                            // Strictness: `{"a":1,}` is an error; the
                            // AwaitKey state with allow_end=false rejects
                            // `}` as ExpectedKey — map to TrailingComma.
                            self.parser.skip_ws_public();
                            if self.parser.peek_public() == Some(b'}') {
                                return Err(Error::at(
                                    ErrorKind::TrailingComma,
                                    self.parser.position(),
                                ));
                            }
                        }
                        (Some(b','), Container::Array) => {
                            self.state = State::AwaitValue { allow_end: false };
                            self.parser.skip_ws_public();
                            if self.parser.peek_public() == Some(b']') {
                                return Err(Error::at(
                                    ErrorKind::TrailingComma,
                                    self.parser.position(),
                                ));
                            }
                        }
                        (Some(b'}'), Container::Object) => {
                            self.pop_container();
                            return Ok(Some(Event::ObjectEnd));
                        }
                        (Some(b']'), Container::Array) => {
                            self.pop_container();
                            return Ok(Some(Event::ArrayEnd));
                        }
                        (Some(_), _) => {
                            return Err(Error::at(
                                ErrorKind::ExpectedSeparator(','),
                                self.parser.position(),
                            ))
                        }
                        (None, _) => {
                            return Err(Error::at(ErrorKind::UnexpectedEof, self.parser.position()))
                        }
                    }
                }
            }
        }
    }
}

impl<'a> Iterator for EventParser<'a> {
    type Item = Result<Event<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_event() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Rebuild a [`Value`] from an event stream — used by tests to prove the
/// two parsers agree, and handy for consumers that filter events before
/// materialising.
pub fn build_value<'a, I: Iterator<Item = Result<Event<'a>>>>(events: &mut I) -> Result<Value> {
    enum Frame<'a> {
        Object(Map, Option<Cow<'a, str>>),
        Array(Vec<Value>),
    }
    let mut stack: Vec<Frame<'a>> = Vec::new();
    loop {
        let event = match events.next() {
            Some(e) => e?,
            None => return Err(Error::at(ErrorKind::UnexpectedEof, Position::start())),
        };
        let completed: Option<Value> = match event {
            Event::Null => Some(Value::Null),
            Event::Bool(b) => Some(Value::Bool(b)),
            Event::Number(n) => Some(Value::Number(n)),
            Event::String(s) => Some(Value::String(s.into_owned())),
            Event::ObjectStart => {
                stack.push(Frame::Object(Map::new(), None));
                None
            }
            Event::ArrayStart => {
                stack.push(Frame::Array(Vec::new()));
                None
            }
            Event::Key(k) => {
                match stack.last_mut() {
                    Some(Frame::Object(_, pending)) => *pending = Some(k),
                    _ => unreachable!("Key outside object"),
                }
                None
            }
            Event::ObjectEnd => match stack.pop() {
                Some(Frame::Object(map, _)) => Some(Value::Object(map)),
                _ => unreachable!("unbalanced ObjectEnd"),
            },
            Event::ArrayEnd => match stack.pop() {
                Some(Frame::Array(elems)) => Some(Value::Array(elems)),
                _ => unreachable!("unbalanced ArrayEnd"),
            },
        };
        if let Some(value) = completed {
            match stack.last_mut() {
                None => return Ok(value),
                Some(Frame::Array(elems)) => elems.push(value),
                Some(Frame::Object(map, pending)) => {
                    let key = pending.take().expect("value follows a key");
                    // Duplicate keys were already policed by the parser;
                    // `insert` keeps last-wins semantics for lenient mode.
                    map.insert(key.into_owned(), value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_value;

    fn events_of(text: &str) -> Vec<Event<'_>> {
        EventParser::new(text.as_bytes())
            .collect::<Result<Vec<_>>>()
            .unwrap()
    }

    fn error_of(text: &str) -> ErrorKind {
        EventParser::new(text.as_bytes())
            .collect::<Result<Vec<_>>>()
            .unwrap_err()
            .kind()
            .clone()
    }

    #[test]
    fn scalar_streams() {
        assert_eq!(events_of("null"), vec![Event::Null]);
        assert_eq!(events_of("true"), vec![Event::Bool(true)]);
        assert_eq!(events_of("3.5"), vec![Event::Number(Number::Float(3.5))]);
        assert_eq!(events_of("\"s\""), vec![Event::String("s".into())]);
    }

    #[test]
    fn object_stream() {
        assert_eq!(
            events_of(r#"{"a": 1, "b": [true]}"#),
            vec![
                Event::ObjectStart,
                Event::Key("a".into()),
                Event::Number(Number::Int(1)),
                Event::Key("b".into()),
                Event::ArrayStart,
                Event::Bool(true),
                Event::ArrayEnd,
                Event::ObjectEnd,
            ]
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(events_of("{}"), vec![Event::ObjectStart, Event::ObjectEnd]);
        assert_eq!(events_of("[]"), vec![Event::ArrayStart, Event::ArrayEnd]);
        assert_eq!(
            events_of("[{}]"),
            vec![
                Event::ArrayStart,
                Event::ObjectStart,
                Event::ObjectEnd,
                Event::ArrayEnd
            ]
        );
    }

    #[test]
    fn strictness_matches_tree_parser() {
        assert_eq!(error_of("[1,]"), ErrorKind::TrailingComma);
        assert_eq!(error_of("{\"a\":1,}"), ErrorKind::TrailingComma);
        assert_eq!(
            error_of("{\"a\":1,\"a\":2}"),
            ErrorKind::DuplicateKey("a".into())
        );
        assert_eq!(error_of("{\"a\" 1}"), ErrorKind::ExpectedSeparator(':'));
        assert_eq!(error_of("[1 2]"), ErrorKind::ExpectedSeparator(','));
        assert_eq!(error_of("{1: 2}"), ErrorKind::ExpectedKey);
        assert_eq!(error_of("["), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn recursion_limit_applies() {
        let deep: String = std::iter::repeat_n('[', 600)
            .chain(std::iter::repeat_n(']', 600))
            .collect();
        assert_eq!(error_of(&deep), ErrorKind::RecursionLimitExceeded);
    }

    #[test]
    fn lenient_duplicate_keys() {
        let opts = ParserOptions {
            allow_duplicate_keys: true,
            ..Default::default()
        };
        let mut p = EventParser::with_options(br#"{"a":1,"a":2}"#, opts);
        let v = build_value(&mut p).unwrap();
        assert_eq!(v, parse_value(r#"{"a":2}"#).unwrap());
    }

    #[test]
    fn iterator_stops_after_error() {
        let mut p = EventParser::new(b"[1,]");
        assert!(p.next().unwrap().is_ok()); // ArrayStart
        assert!(p.next().unwrap().is_ok()); // 1
        assert!(p.next().unwrap().is_err());
        assert!(p.next().is_none(), "fused after error");
    }

    #[test]
    fn finish_rejects_trailing_garbage() {
        let mut p = EventParser::new(b"{} x");
        for e in &mut p {
            e.unwrap();
        }
        assert!(matches!(
            p.finish().unwrap_err().kind(),
            ErrorKind::TrailingCharacters
        ));

        let mut clean = EventParser::new(b"{}  ");
        for e in &mut clean {
            e.unwrap();
        }
        clean.finish().unwrap();
    }

    #[test]
    fn replay_equals_tree_parser() {
        for text in [
            "null",
            r#"{"a": [1, {"b": null}], "c": {"d": [true, false]}}"#,
            r#"[[], {}, "x", -2.5e3]"#,
            r#"{"unicode": "é😀"}"#,
        ] {
            let mut p = EventParser::new(text.as_bytes());
            let via_events = build_value(&mut p).unwrap();
            p.finish().unwrap();
            assert_eq!(via_events, parse_value(text).unwrap(), "for {text}");
        }
    }
}
