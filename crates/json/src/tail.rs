//! Tailing line reader for growing and non-seekable NDJSON inputs.
//!
//! [`NdjsonReader`](crate::NdjsonReader) treats end-of-input as final —
//! the right model for a batch run over a finished file. A resident
//! service (`typefuse serve`) instead watches sources that *keep
//! growing*: a log file under append, a FIFO, a TCP stream. For those,
//! "no more bytes right now" is not "no more bytes ever", and a line
//! may arrive split across many reads, so the reader must buffer the
//! unterminated tail and only surface *complete* lines.
//!
//! [`TailReader`] does exactly that: each [`poll`](TailReader::poll)
//! drains whatever bytes the underlying stream has (stopping at
//! end-of-data or `WouldBlock`), appends them to an internal carry
//! buffer, and returns every newline-terminated line's content. The
//! partial trailing line stays buffered until a later poll completes
//! it. This makes the reader safe over plain `File`s that other
//! processes append to (reads past EOF return fresh data on the next
//! poll), FIFOs, and non-blocking sockets alike — no seeking required.

use crate::ndjson::RetryPolicy;
use std::io::Read;
use typefuse_obs::Recorder;

/// One complete line surfaced by [`TailReader::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailLine {
    /// Line content without the trailing newline (and without a
    /// trailing `\r`, so CRLF inputs behave like LF).
    pub content: Vec<u8>,
    /// The line exceeded the configured `max_line_bytes` cap; `content`
    /// holds only the first `max_line_bytes` bytes.
    pub truncated: bool,
}

/// Whether the stream can still produce data after this poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// The stream is drained for now but may grow (EOF on a regular
    /// file, `WouldBlock` on a non-blocking source). Poll again later.
    Idle,
    /// The stream is permanently closed: a read returned 0 on a
    /// source the caller declared finite via [`TailReader::close_on_eof`].
    Closed,
}

/// A buffering line reader over a possibly-growing byte stream.
pub struct TailReader<R> {
    reader: R,
    /// Carry buffer for the unterminated trailing line.
    pending: Vec<u8>,
    /// Bytes of the pending line dropped by the size cap.
    pending_overflow: bool,
    max_line_bytes: Option<usize>,
    retry: RetryPolicy,
    recorder: Recorder,
    lines: u64,
    bytes: u64,
    close_on_eof: bool,
    closed: bool,
}

impl<R: Read> TailReader<R> {
    /// Wrap a raw reader. By default EOF means "idle, poll again".
    pub fn new(reader: R) -> Self {
        TailReader {
            reader,
            pending: Vec::new(),
            pending_overflow: false,
            max_line_bytes: None,
            retry: RetryPolicy::none(),
            recorder: Recorder::disabled(),
            lines: 0,
            bytes: 0,
            close_on_eof: false,
            closed: false,
        }
    }

    /// Cap a single line's buffered content at `cap` bytes. Oversized
    /// lines surface with [`TailLine::truncated`] set instead of
    /// growing the carry buffer without bound.
    pub fn with_max_line_bytes(mut self, cap: usize) -> Self {
        self.max_line_bytes = Some(cap);
        self
    }

    /// Retry transient I/O errors (`Interrupted`) per `policy` before
    /// surfacing them; retries count `ingest.retries` on the recorder.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Attach a recorder: counts `json.bytes` (raw bytes consumed) and
    /// `ingest.retries`.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Treat a zero-byte read as a permanent close (right for TCP
    /// connections and one-shot pipes, wrong for growing files).
    pub fn close_on_eof(mut self) -> Self {
        self.close_on_eof = true;
        self
    }

    /// Restore checkpointed progress: the partial-line carry buffer
    /// (with its overflow flag) and the byte/line counters. The caller
    /// is responsible for positioning the underlying stream at byte
    /// `bytes` (e.g. `Seek` after re-opening a file); from there the
    /// reader continues exactly where the checkpointed one stopped —
    /// same line numbering, same pending tail, same truncation state.
    pub fn with_resume_state(
        mut self,
        pending: Vec<u8>,
        pending_overflow: bool,
        bytes: u64,
        lines: u64,
    ) -> Self {
        self.pending = pending;
        self.pending_overflow = pending_overflow;
        self.bytes = bytes;
        self.lines = lines;
        self
    }

    /// Whether the pending tail overflowed the line-size cap (part of
    /// the state a checkpoint must persist).
    pub fn pending_overflow(&self) -> bool {
        self.pending_overflow
    }

    /// Complete lines surfaced so far.
    pub fn lines_read(&self) -> u64 {
        self.lines
    }

    /// Raw bytes consumed so far (including newlines).
    pub fn bytes_read(&self) -> u64 {
        self.bytes
    }

    /// The buffered content of the current unterminated line, if any.
    pub fn pending(&self) -> &[u8] {
        &self.pending
    }

    /// Take the unterminated tail as a final line (for shutdown: a
    /// finished file whose last record lacks a newline). Returns `None`
    /// when nothing is buffered.
    pub fn take_pending(&mut self) -> Option<TailLine> {
        if self.pending.is_empty() && !self.pending_overflow {
            return None;
        }
        self.lines += 1;
        Some(TailLine {
            content: std::mem::take(&mut self.pending),
            truncated: std::mem::take(&mut self.pending_overflow),
        })
    }

    /// Drain currently-available bytes and append every completed line
    /// to `out`. Returns the stream status: [`TailStatus::Idle`] when
    /// the source may still grow, [`TailStatus::Closed`] once a
    /// [`close_on_eof`](Self::close_on_eof) source hits EOF.
    pub fn poll(&mut self, out: &mut Vec<TailLine>) -> std::io::Result<TailStatus> {
        if self.closed {
            return Ok(TailStatus::Closed);
        }
        let mut chunk = [0u8; 8192];
        let mut attempts = 0u32;
        loop {
            match self.reader.read(&mut chunk) {
                Ok(0) => {
                    if self.close_on_eof {
                        self.closed = true;
                        return Ok(TailStatus::Closed);
                    }
                    return Ok(TailStatus::Idle);
                }
                Ok(n) => {
                    attempts = 0;
                    self.bytes += n as u64;
                    self.recorder.add("json.bytes", n as u64);
                    self.absorb(&chunk[..n], out);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(TailStatus::Idle);
                }
                Err(e)
                    if RetryPolicy::is_transient(e.kind()) && attempts < self.retry.max_retries =>
                {
                    self.recorder.add("ingest.retries", 1);
                    std::thread::sleep(self.retry.backoff(attempts));
                    attempts += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn absorb(&mut self, mut bytes: &[u8], out: &mut Vec<TailLine>) {
        while let Some(i) = bytes.iter().position(|&b| b == b'\n') {
            self.push_content(&bytes[..i]);
            let mut content = std::mem::take(&mut self.pending);
            if content.last() == Some(&b'\r') {
                content.pop();
            }
            self.lines += 1;
            out.push(TailLine {
                content,
                truncated: std::mem::take(&mut self.pending_overflow),
            });
            bytes = &bytes[i + 1..];
        }
        self.push_content(bytes);
    }

    fn push_content(&mut self, content: &[u8]) {
        match self.max_line_bytes {
            Some(cap) => {
                let room = cap.saturating_sub(self.pending.len());
                if content.len() > room {
                    self.pending_overflow = true;
                }
                self.pending
                    .extend_from_slice(&content[..content.len().min(room)]);
            }
            None => self.pending.extend_from_slice(content),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{self, Read};

    fn contents(lines: &[TailLine]) -> Vec<String> {
        lines
            .iter()
            .map(|l| String::from_utf8(l.content.clone()).unwrap())
            .collect()
    }

    /// A stream the test grows between polls: reads drain `data`, then
    /// report EOF until more is pushed.
    struct Growing {
        data: Vec<u8>,
        pos: usize,
    }

    impl Growing {
        fn append(&mut self, more: &[u8]) {
            self.data.extend_from_slice(more);
        }
    }

    impl Read for Growing {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn completes_lines_across_polls() {
        let mut src = Growing {
            data: b"{\"a\":1}\n{\"a\"".to_vec(),
            pos: 0,
        };
        let mut out = Vec::new();
        // First poll: one complete line, partial tail held back.
        {
            let mut tail = TailReader::new(&mut src);
            assert_eq!(tail.poll(&mut out).unwrap(), TailStatus::Idle);
            assert_eq!(contents(&out), vec!["{\"a\":1}"]);
            assert_eq!(tail.pending(), b"{\"a\"");
        }
        // "File grew": rebuild the reader state by replaying — instead,
        // drive one reader over a growing source directly below.
        let mut src = Growing {
            data: b"{\"a\":1}\n{\"a\"".to_vec(),
            pos: 0,
        };
        let mut out = Vec::new();
        let mut tail = TailReader::new(Growing {
            data: Vec::new(),
            pos: 0,
        });
        std::mem::swap(&mut tail.reader, &mut src);
        assert_eq!(tail.poll(&mut out).unwrap(), TailStatus::Idle);
        tail.reader.append(b":2}\n");
        assert_eq!(tail.poll(&mut out).unwrap(), TailStatus::Idle);
        assert_eq!(contents(&out), vec!["{\"a\":1}", "{\"a\":2}"]);
        assert_eq!(tail.lines_read(), 2);
        assert!(tail.pending().is_empty());
    }

    #[test]
    fn crlf_is_normalized_and_blank_lines_surface_empty() {
        let mut tail = TailReader::new(&b"a\r\n\nb\n"[..]);
        let mut out = Vec::new();
        tail.poll(&mut out).unwrap();
        assert_eq!(contents(&out), vec!["a", "", "b"]);
    }

    #[test]
    fn close_on_eof_reports_closed_once_drained() {
        let mut tail = TailReader::new(&b"x\n"[..]).close_on_eof();
        let mut out = Vec::new();
        assert_eq!(tail.poll(&mut out).unwrap(), TailStatus::Closed);
        assert_eq!(contents(&out), vec!["x"]);
        assert_eq!(tail.poll(&mut out).unwrap(), TailStatus::Closed);
    }

    #[test]
    fn take_pending_flushes_the_unterminated_tail() {
        let mut tail = TailReader::new(&b"a\nlast"[..]);
        let mut out = Vec::new();
        tail.poll(&mut out).unwrap();
        assert_eq!(contents(&out), vec!["a"]);
        let last = tail.take_pending().unwrap();
        assert_eq!(last.content, b"last");
        assert!(!last.truncated);
        assert!(tail.take_pending().is_none());
        assert_eq!(tail.lines_read(), 2);
    }

    #[test]
    fn resume_state_continues_mid_line() {
        // Uninterrupted reference run.
        let data: &[u8] = b"{\"a\":1}\n{\"b\"\n{\"c\":3}\n";
        let mut whole = TailReader::new(data);
        let mut expected = Vec::new();
        whole.poll(&mut expected).unwrap();

        // Crash after the first 10 bytes (mid-line), checkpoint the
        // reader state, resume over the remaining bytes.
        let mut before = TailReader::new(&data[..10]);
        let mut out = Vec::new();
        before.poll(&mut out).unwrap();
        let (pending, overflow, bytes, lines) = (
            before.pending().to_vec(),
            before.pending_overflow(),
            before.bytes_read(),
            before.lines_read(),
        );
        let mut resumed = TailReader::new(&data[bytes as usize..])
            .with_resume_state(pending, overflow, bytes, lines);
        resumed.poll(&mut out).unwrap();
        assert_eq!(out, expected);
        assert_eq!(resumed.lines_read(), whole.lines_read());
        assert_eq!(resumed.bytes_read(), whole.bytes_read());
    }

    #[test]
    fn oversized_lines_are_capped_and_flagged() {
        let data = b"0123456789abcdef\nok\n";
        let mut tail = TailReader::new(&data[..]).with_max_line_bytes(4);
        let mut out = Vec::new();
        tail.poll(&mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].truncated);
        assert_eq!(out[0].content, b"0123");
        assert!(!out[1].truncated);
        assert_eq!(out[1].content, b"ok");
    }

    /// `WouldBlock` then data, to model a non-blocking socket.
    struct Blocky {
        data: Vec<u8>,
        pos: usize,
        block_next: bool,
    }

    impl Read for Blocky {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "later"));
            }
            self.block_next = true;
            let n = buf.len().min(2).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn would_block_yields_idle_and_resumes() {
        let mut tail = TailReader::new(Blocky {
            data: b"{\"k\":true}\n".to_vec(),
            pos: 0,
            block_next: true,
        });
        let mut out = Vec::new();
        for _ in 0..32 {
            if tail.poll(&mut out).unwrap() == TailStatus::Idle && !out.is_empty() {
                break;
            }
        }
        assert_eq!(contents(&out), vec!["{\"k\":true}"]);
    }

    #[test]
    fn interrupted_reads_are_retried_and_counted() {
        struct Flaky {
            data: Vec<u8>,
            pos: usize,
            fail_next: bool,
        }
        impl Read for Flaky {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.fail_next && self.pos < self.data.len() {
                    self.fail_next = false;
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
                }
                self.fail_next = true;
                let n = buf.len().min(3).min(self.data.len() - self.pos);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let rec = Recorder::enabled();
        let mut tail = TailReader::new(Flaky {
            data: b"{\"a\":1}\n".to_vec(),
            pos: 0,
            fail_next: true,
        })
        .with_retry(RetryPolicy {
            max_retries: 8,
            base_backoff: std::time::Duration::ZERO,
        })
        .with_recorder(rec.clone());
        let mut out = Vec::new();
        tail.poll(&mut out).unwrap();
        assert_eq!(contents(&out), vec!["{\"a\":1}"]);
        assert!(rec.counter_value("ingest.retries") > 0);
        assert_eq!(rec.counter_value("json.bytes"), 8);
    }
}
