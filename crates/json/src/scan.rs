//! Stage-1 structural scanner: a SWAR (SIMD-within-a-register) pass that
//! classifies every byte of a buffer in branch-light u64 arithmetic.
//!
//! This is the stable-Rust analogue of simdjson's stage 1 (Langdale &
//! Lemire, *Parsing Gigabytes of JSON per Second*): one sweep over the
//! input emits a [`ScanIndex`] — the offsets of every structural
//! character (`{ } [ ] : ,`) outside strings, every unescaped quote, and
//! every newline — without ever branching per byte on string state. The
//! index is enough to walk a record's *shape* (see [`tokens`]) without
//! re-lexing, and the newline list means NDJSON record splitting and
//! structural indexing share the same scan (see [`ScanIndex::records`]).
//!
//! # How the word classification works
//!
//! The input is processed in 64-byte blocks. Each 8-byte word is loaded
//! with `u64::from_le_bytes` and compared against a splatted byte with a
//! carry-free per-byte zero detector (see `eq_mask`), then the
//! per-byte `0x80` flags are packed into one bit per byte with a
//! multiply, yielding a 64-bit mask per block for each character class.
//! Three mask computations then resolve string context:
//!
//! 1. **Escapes**: backslash runs are resolved with the odd/even-run
//!    carry trick — adding the run mask to the mask of odd-position run
//!    starts makes the bit *after* each odd-length run fall out of the
//!    sum, with the add carry propagating runs across block boundaries.
//!    A quote preceded by an odd-length backslash run is escaped.
//! 2. **Strings**: a prefix-XOR over the unescaped-quote mask (log-step
//!    shift-XOR ladder, the CLMUL-free form) turns quote *positions*
//!    into an in-string *region* mask; the block's top bit carries the
//!    open-string state forward.
//! 3. **Structurals**: the `{ } [ ] : ,` class mask is AND-ed with the
//!    complement of the in-string mask.
//!
//! UTF-8 needs no special handling: every classified byte is ASCII
//! (`< 0x80`) and multi-byte sequences only contain bytes `>= 0x80`, so
//! continuation bytes can never false-positive.
//!
//! Newlines are recorded *unconditionally* (even inside strings), which
//! matches NDJSON line splitting: a raw `\n` inside a string is invalid
//! JSON anyway (control characters must be escaped), and the reader
//! splits on every newline byte.
//!
//! The scanner makes no validity judgement beyond quote pairing
//! ([`ScanIndex::unterminated`]); malformed input simply produces tokens
//! that downstream consumers refuse to sign, falling back to the real
//! parser for byte-identical error reporting.

const ONES: u64 = 0x0101_0101_0101_0101;
const HIGH: u64 = 0x8080_8080_8080_8080;
const EVEN_BITS: u64 = 0x5555_5555_5555_5555;

/// The structural index produced by one [`scan`] sweep.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ScanIndex {
    /// Offsets of `{ } [ ] : ,` outside string literals, ascending.
    pub structurals: Vec<u32>,
    /// Offsets of unescaped `"` bytes (string delimiters, both opening
    /// and closing), ascending.
    pub quotes: Vec<u32>,
    /// Offsets of every `\n` byte, ascending — recorded regardless of
    /// string context so record splitting can share this scan.
    pub newlines: Vec<u32>,
    /// True when the buffer ends inside an open string literal (odd
    /// number of unescaped quotes).
    pub unterminated: bool,
}

impl ScanIndex {
    /// Split `input` into newline-delimited records using the newline
    /// offsets found by the scan, mirroring `BufRead::read_line`
    /// semantics: each record excludes its terminator, and a non-empty
    /// tail without a trailing newline is a final record.
    pub fn records<'a>(&self, input: &'a [u8]) -> Vec<&'a [u8]> {
        let mut out = Vec::with_capacity(self.newlines.len() + 1);
        let mut start = 0usize;
        for &nl in &self.newlines {
            out.push(&input[start..nl as usize]);
            start = nl as usize + 1;
        }
        if start < input.len() {
            out.push(&input[start..]);
        }
        out
    }
}

/// Per-byte `0x80` flags for bytes of `w` equal to `b`.
///
/// Uses the carry-free zero-byte detector: with the XOR distance `x`,
/// `(x & 0x7f…7f) + 0x7f…7f` sets bit 7 of a byte iff its low seven
/// bits are non-zero, and each per-byte sum tops out at `0xfe`, so no
/// carry ever crosses a byte boundary. OR-ing in `x` itself folds in
/// bit 7, and the negation leaves `0x80` exactly where a byte is zero.
/// (The shorter `(x - 0x01…01) & !x & 0x80…80` trick is exact only as a
/// *has-zero predicate*: its subtract borrows across byte boundaries,
/// so a byte at XOR distance 1 right after a true match — e.g. `\`
/// after `]` — would false-positive.)
#[inline]
fn eq_mask(w: u64, b: u8) -> u64 {
    let x = w ^ (u64::from(b).wrapping_mul(ONES));
    !((x & !HIGH).wrapping_add(!HIGH) | x | !HIGH)
}

/// Pack per-byte `0x80` flags into one bit per byte (byte k → bit k).
/// The multiply routes flag `8k+7` to bit `56+k`; each output bit has
/// exactly one contributing term, so no carries occur.
#[inline]
fn pack_bits(flags: u64) -> u64 {
    (flags >> 7).wrapping_mul(0x0102_0408_1020_4080) >> 56
}

/// Bit-parallel prefix XOR: bit i of the result is the parity of bits
/// `0..=i` of the input.
#[inline]
fn prefix_xor(mut x: u64) -> u64 {
    x ^= x << 1;
    x ^= x << 2;
    x ^= x << 4;
    x ^= x << 8;
    x ^= x << 16;
    x ^= x << 32;
    x
}

/// Character-class bit masks for one 64-byte block.
#[derive(Default, Clone, Copy)]
struct BlockMasks {
    backslash: u64,
    quote: u64,
    structural: u64,
    newline: u64,
}

#[inline]
fn classify_word(w: u64) -> (u64, u64, u64, u64) {
    let backslash = eq_mask(w, b'\\');
    let quote = eq_mask(w, b'"');
    let structural = eq_mask(w, b'{')
        | eq_mask(w, b'}')
        | eq_mask(w, b'[')
        | eq_mask(w, b']')
        | eq_mask(w, b':')
        | eq_mask(w, b',');
    let newline = eq_mask(w, b'\n');
    (
        pack_bits(backslash),
        pack_bits(quote),
        pack_bits(structural),
        pack_bits(newline),
    )
}

#[inline]
fn classify_block(block: &[u8; 64]) -> BlockMasks {
    let mut m = BlockMasks::default();
    for k in 0..8 {
        let w = u64::from_le_bytes(block[k * 8..k * 8 + 8].try_into().expect("8-byte chunk"));
        let (bs, qt, st, nl) = classify_word(w);
        let shift = (k * 8) as u32;
        m.backslash |= bs << shift;
        m.quote |= qt << shift;
        m.structural |= st << shift;
        m.newline |= nl << shift;
    }
    m
}

/// Positions escaped by a preceding odd-length backslash run
/// (simdjson's `find_escaped`), with the run carried across blocks in
/// `prev_escaped` (1 when the first byte of the next block is escaped).
#[inline]
fn find_escaped(backslash: u64, prev_escaped: &mut u64) -> u64 {
    let bs = backslash & !*prev_escaped;
    let follows_escape = (bs << 1) | *prev_escaped;
    let odd_starts = bs & !EVEN_BITS & !follows_escape;
    let (seq, overflow) = odd_starts.overflowing_add(bs);
    *prev_escaped = u64::from(overflow);
    (EVEN_BITS ^ (seq << 1)) & follows_escape
}

#[inline]
fn push_offsets(out: &mut Vec<u32>, mut mask: u64, base: usize) {
    while mask != 0 {
        let bit = mask.trailing_zeros();
        out.push((base as u32) + bit);
        mask &= mask - 1;
    }
}

/// Scan `input` in one SWAR sweep and return its structural index.
pub fn scan(input: &[u8]) -> ScanIndex {
    let mut index = ScanIndex::default();
    scan_into(input, &mut index);
    index
}

/// [`scan`] into a caller-owned index, reusing its offset buffers — the
/// allocation-free form for per-record callers like the shape cache.
pub fn scan_into(input: &[u8], index: &mut ScanIndex) {
    index.structurals.clear();
    index.quotes.clear();
    index.newlines.clear();
    index.unterminated = false;
    let mut prev_escaped = 0u64;
    // All-ones while inside a string at the start of the current block.
    let mut prev_in_string = 0u64;

    let mut base = 0usize;
    let mut chunks = input.chunks_exact(64);
    for block in &mut chunks {
        let block: &[u8; 64] = block.try_into().expect("64-byte block");
        scan_block(
            &classify_block(block),
            base,
            64,
            &mut prev_escaped,
            &mut prev_in_string,
            index,
        );
        base += 64;
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        // Pad with NUL bytes, which belong to no character class.
        let mut block = [0u8; 64];
        block[..tail.len()].copy_from_slice(tail);
        scan_block(
            &classify_block(&block),
            base,
            tail.len(),
            &mut prev_escaped,
            &mut prev_in_string,
            index,
        );
    }
    index.unterminated = prev_in_string != 0;
}

#[inline]
fn scan_block(
    m: &BlockMasks,
    base: usize,
    len: usize,
    prev_escaped: &mut u64,
    prev_in_string: &mut u64,
    index: &mut ScanIndex,
) {
    let valid = if len == 64 { !0u64 } else { (1u64 << len) - 1 };
    let escaped = find_escaped(m.backslash, prev_escaped);
    let quotes = m.quote & !escaped;
    let in_string = prefix_xor(quotes) ^ *prev_in_string;
    *prev_in_string = 0u64.wrapping_sub((in_string >> 63) & 1);
    push_offsets(&mut index.quotes, quotes & valid, base);
    // `!escaped` only matters on malformed input (a backslash outside a
    // string); valid JSON has escapes exclusively inside strings, which
    // `!in_string` already masks. Kept so the scalar oracle's "escape
    // consumes the next byte" rule holds verbatim.
    push_offsets(
        &mut index.structurals,
        m.structural & !in_string & !escaped & valid,
        base,
    );
    push_offsets(&mut index.newlines, m.newline & valid, base);
}

/// Byte-at-a-time reference implementation of [`scan`], used as the
/// differential oracle in tests and as the scalar baseline in benches.
pub fn scan_scalar(input: &[u8]) -> ScanIndex {
    let mut index = ScanIndex::default();
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in input.iter().enumerate() {
        if b == b'\n' {
            index.newlines.push(i as u32);
        }
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' => escaped = true,
            b'"' => {
                index.quotes.push(i as u32);
                in_string = !in_string;
            }
            b'{' | b'}' | b'[' | b']' | b':' | b',' if !in_string => {
                index.structurals.push(i as u32);
            }
            _ => {}
        }
    }
    index.unterminated = in_string;
    index
}

/// One shape token produced by [`tokens`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token<'a> {
    /// A structural character outside strings: `{ } [ ] : ,`.
    Punct(u8),
    /// A string literal, including its surrounding quotes, verbatim.
    Str(&'a [u8]),
    /// A maximal whitespace-delimited run of non-structural,
    /// non-string bytes: a number, literal, or garbage. Not validated.
    Scalar(&'a [u8]),
}

/// Iterator over a buffer's shape tokens, driven by a [`ScanIndex`]
/// (no re-lexing: string bodies are skipped via the quote offsets).
///
/// On malformed input — an unterminated string — iteration simply ends
/// early; callers that care must check [`ScanIndex::unterminated`]
/// before trusting the token stream.
pub struct Tokens<'a> {
    input: &'a [u8],
    index: &'a ScanIndex,
    si: usize,
    qi: usize,
    pos: usize,
}

/// Walk the shape tokens of `input` using a previously computed index.
pub fn tokens<'a>(input: &'a [u8], index: &'a ScanIndex) -> Tokens<'a> {
    Tokens {
        input,
        index,
        si: 0,
        qi: 0,
        pos: 0,
    }
}

#[inline]
fn is_ws(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r')
}

impl<'a> Iterator for Tokens<'a> {
    type Item = Token<'a>;

    fn next(&mut self) -> Option<Token<'a>> {
        let next_struct = self
            .index
            .structurals
            .get(self.si)
            .map_or(self.input.len(), |&o| o as usize);
        let next_quote = self
            .index
            .quotes
            .get(self.qi)
            .map_or(self.input.len(), |&o| o as usize);
        let boundary = next_struct.min(next_quote);

        // Scalar bytes between here and the next marker.
        while self.pos < boundary && is_ws(self.input[self.pos]) {
            self.pos += 1;
        }
        if self.pos < boundary {
            let start = self.pos;
            while self.pos < boundary && !is_ws(self.input[self.pos]) {
                self.pos += 1;
            }
            return Some(Token::Scalar(&self.input[start..self.pos]));
        }
        if boundary == self.input.len() {
            return None;
        }
        if boundary == next_quote {
            // Opening quote: its closer is the next quote offset.
            let close = *self.index.quotes.get(self.qi + 1)? as usize;
            self.qi += 2;
            self.pos = close + 1;
            return Some(Token::Str(&self.input[next_quote..=close]));
        }
        self.si += 1;
        self.pos = boundary + 1;
        Some(Token::Punct(self.input[boundary]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offsets(v: &[u32]) -> Vec<usize> {
        v.iter().map(|&o| o as usize).collect()
    }

    #[test]
    fn classifies_a_flat_record() {
        let input = br#"{"a": 1, "b": "x"}"#;
        let idx = scan(input);
        assert_eq!(offsets(&idx.structurals), vec![0, 4, 7, 12, 17]);
        assert_eq!(offsets(&idx.quotes), vec![1, 3, 9, 11, 14, 16]);
        assert!(idx.newlines.is_empty());
        assert!(!idx.unterminated);
    }

    #[test]
    fn structurals_inside_strings_are_suppressed() {
        let input = br#"{"a": "{[,:]}"}"#;
        let idx = scan(input);
        assert_eq!(offsets(&idx.structurals), vec![0, 4, 14]);
    }

    #[test]
    fn escaped_quotes_do_not_delimit() {
        let input = br#"{"a": "x\"y", "b\\": 1}"#;
        let idx = scan(input);
        assert_eq!(idx, scan_scalar(input));
        // The `\"` at offset 9 is content, not a delimiter.
        assert!(!offsets(&idx.quotes).contains(&9));
        assert!(!idx.unterminated);
    }

    #[test]
    fn backslash_runs_carry_across_word_and_block_boundaries() {
        // Place an escaped quote so the backslash run straddles the
        // 8-byte word boundary and the 64-byte block boundary.
        for pad in 0..130usize {
            let mut s = Vec::new();
            s.extend_from_slice(br#"{"k": ""#);
            s.resize(s.len() + pad, b'x');
            s.extend_from_slice(br#"\\\"q"}"#);
            let swar = scan(&s);
            let scalar = scan_scalar(&s);
            assert_eq!(swar, scalar, "pad={pad}");
            assert!(!swar.unterminated, "pad={pad}");
        }
    }

    #[test]
    fn xor_distance_one_neighbours_do_not_false_positive() {
        // Regression: the borrow-propagating zero-byte trick flags a
        // byte at XOR distance 1 right after a true match (`\` after
        // `]`, `#` after `"`). The carry-free detector must not.
        let idx = scan(b"[]\\");
        assert_eq!(idx, scan_scalar(b"[]\\"));
        assert_eq!(offsets(&idx.structurals), vec![0, 1]);
        let idx = scan(br##""a"# {"##);
        assert_eq!(idx, scan_scalar(br##""a"# {"##));
        assert_eq!(offsets(&idx.quotes), vec![0, 2]);
        assert_eq!(offsets(&idx.structurals), vec![5]);
    }

    #[test]
    fn unterminated_string_is_flagged() {
        let idx = scan(br#"{"a": "oops}"#);
        assert!(idx.unterminated);
        assert!(scan_scalar(br#"{"a": "oops}"#).unterminated);
    }

    #[test]
    fn newlines_split_records_like_read_line() {
        let input = b"{\"a\":1}\n{\"b\":2}\n{\"c\":\"x\\ny\"}";
        let idx = scan(input);
        let records = idx.records(input);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], b"{\"a\":1}");
        assert_eq!(records[2], b"{\"c\":\"x\\ny\"}");
        // A trailing newline yields no empty final record.
        let idx2 = scan(b"{}\n");
        assert_eq!(idx2.records(b"{}\n"), vec![b"{}".as_slice()]);
    }

    #[test]
    fn utf8_multibyte_content_is_inert() {
        let input = "{\"désc\": \"héllo • wörld\", \"n\": 42}".as_bytes();
        assert_eq!(scan(input), scan_scalar(input));
    }

    #[test]
    fn matches_scalar_reference_on_long_and_odd_length_inputs() {
        // Records far longer than one 64-byte block, lengths straddling
        // every tail size.
        let body = r#"{"key": "value with \"escapes\" and \\ runs", "n": [1, 2, 3.5e-2]}"#;
        let mut s = String::new();
        for i in 0..8 {
            s.push_str(body);
            s.push('\n');
            for len in 0..70 {
                let sub = &s.as_bytes()[..s.len().saturating_sub(len).max(i)];
                assert_eq!(scan(sub), scan_scalar(sub), "len={}", sub.len());
            }
        }
    }

    #[test]
    fn tokens_walk_punct_strings_and_scalars() {
        let input = br#"{"a": [1, "x y", true]}"#;
        let idx = scan(input);
        let toks: Vec<Token> = tokens(input, &idx).collect();
        assert_eq!(
            toks,
            vec![
                Token::Punct(b'{'),
                Token::Str(br#""a""#),
                Token::Punct(b':'),
                Token::Punct(b'['),
                Token::Scalar(b"1"),
                Token::Punct(b','),
                Token::Str(br#""x y""#),
                Token::Punct(b','),
                Token::Scalar(b"true"),
                Token::Punct(b']'),
                Token::Punct(b'}'),
            ]
        );
    }

    #[test]
    fn adjacent_scalars_stay_distinct_tokens() {
        let input = b"[1 2]";
        let idx = scan(input);
        let toks: Vec<Token> = tokens(input, &idx).collect();
        assert_eq!(
            toks,
            vec![
                Token::Punct(b'['),
                Token::Scalar(b"1"),
                Token::Scalar(b"2"),
                Token::Punct(b']'),
            ]
        );
    }
}
