//! # typefuse-json
//!
//! A from-scratch JSON substrate for the typefuse schema-inference system.
//!
//! The EDBT 2017 paper parses its input collections with the Json4s Scala
//! library before running type inference. This crate plays that role: it
//! provides
//!
//! * a [`Value`] tree that mirrors the paper's data model (Figure 2):
//!   basic values (`null`, booleans, numbers, strings), records (sets of
//!   key/value pairs with unique keys) and arrays (ordered lists),
//! * a byte-level, span-carrying recursive-descent [parser](parse) for
//!   RFC 8259 JSON,
//! * a compact and a pretty [serializer](ser), and
//! * an [NDJSON](ndjson) (newline-delimited JSON) reader, the on-disk
//!   layout used for all the paper's datasets.
//!
//! The parser is deliberately strict: duplicate keys within one object are
//! rejected, because the paper's data model (Section 4) only admits
//! *well-formed* records. A lenient mode keeping the last binding is
//! available through [`parse::ParserOptions`].
//!
//! ```
//! use typefuse_json::{parse_value, Value};
//!
//! let v = parse_value(r#"{"name": "edbt", "year": 2017, "tags": ["json", "schema"]}"#).unwrap();
//! assert_eq!(v.get("year"), Some(&Value::from(2017)));
//! assert_eq!(v.to_string(), r#"{"name":"edbt","year":2017,"tags":["json","schema"]}"#);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod envelope;
pub mod error;
pub mod events;
pub mod ndjson;
pub mod number;
pub mod parse;
pub mod pointer;
pub mod scan;
pub mod ser;
pub mod tail;
#[cfg(any(feature = "testkit", test))]
pub mod testkit;
pub mod value;

pub use envelope::{parse_envelope, Envelope};
pub use error::{Error, ErrorKind, Position, Result, Span};
pub use ndjson::{NdjsonReader, RetryPolicy};
pub use number::Number;
pub use parse::{parse_value, Parser, ParserOptions};
pub use scan::{scan, ScanIndex};
pub use ser::{to_string, to_string_pretty};
pub use tail::{TailLine, TailReader, TailStatus};
pub use value::{Map, Value};
