//! JSON serialization: compact (one line, no spaces) and pretty (indented).
//!
//! The compact form is what the dataset generators emit as NDJSON; the
//! pretty form is for human inspection in examples and the CLI.

use crate::value::Value;
use std::fmt;

/// Serialize a value compactly: `{"a":1,"b":[true,null]}`.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    // Writing to a String cannot fail.
    let _ = write_value(&mut out, value);
    out
}

/// Serialize a value with 2-space indentation.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    let _ = write_pretty(&mut out, value, 0);
    out
}

/// Write the compact form into any formatter (used by `Display for Value`).
pub(crate) fn write_compact(value: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write_value(f, value)
}

fn write_value<W: fmt::Write>(w: &mut W, value: &Value) -> fmt::Result {
    match value {
        Value::Null => w.write_str("null"),
        Value::Bool(true) => w.write_str("true"),
        Value::Bool(false) => w.write_str("false"),
        Value::Number(n) => write!(w, "{n}"),
        Value::String(s) => write_escaped(w, s),
        Value::Array(elems) => {
            w.write_char('[')?;
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    w.write_char(',')?;
                }
                write_value(w, e)?;
            }
            w.write_char(']')
        }
        Value::Object(map) => {
            w.write_char('{')?;
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    w.write_char(',')?;
                }
                write_escaped(w, k)?;
                w.write_char(':')?;
                write_value(w, v)?;
            }
            w.write_char('}')
        }
    }
}

fn write_pretty<W: fmt::Write>(w: &mut W, value: &Value, indent: usize) -> fmt::Result {
    const STEP: usize = 2;
    match value {
        Value::Array(elems) if !elems.is_empty() => {
            w.write_str("[\n")?;
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    w.write_str(",\n")?;
                }
                write_indent(w, indent + STEP)?;
                write_pretty(w, e, indent + STEP)?;
            }
            w.write_char('\n')?;
            write_indent(w, indent)?;
            w.write_char(']')
        }
        Value::Object(map) if !map.is_empty() => {
            w.write_str("{\n")?;
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    w.write_str(",\n")?;
                }
                write_indent(w, indent + STEP)?;
                write_escaped(w, k)?;
                w.write_str(": ")?;
                write_pretty(w, v, indent + STEP)?;
            }
            w.write_char('\n')?;
            write_indent(w, indent)?;
            w.write_char('}')
        }
        other => write_value(w, other),
    }
}

fn write_indent<W: fmt::Write>(w: &mut W, n: usize) -> fmt::Result {
    for _ in 0..n {
        w.write_char(' ')?;
    }
    Ok(())
}

/// Write a string with RFC 8259 escaping. Only the mandatory escapes are
/// produced (`"`, `\`, control characters); everything else is emitted as
/// raw UTF-8.
fn write_escaped<W: fmt::Write>(w: &mut W, s: &str) -> fmt::Result {
    w.write_char('"')?;
    let mut plain_start = 0;
    for (i, b) in s.bytes().enumerate() {
        let escape: Option<&str> = match b {
            b'"' => Some("\\\""),
            b'\\' => Some("\\\\"),
            0x08 => Some("\\b"),
            0x0c => Some("\\f"),
            b'\n' => Some("\\n"),
            b'\r' => Some("\\r"),
            b'\t' => Some("\\t"),
            0x00..=0x1f => None, // \uXXXX, handled below
            _ => continue,
        };
        w.write_str(&s[plain_start..i])?;
        match escape {
            Some(e) => w.write_str(e)?,
            None => write!(w, "\\u{:04x}", b)?,
        }
        plain_start = i + 1;
    }
    w.write_str(&s[plain_start..])?;
    w.write_char('"')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, parse_value};

    #[test]
    fn compact_output() {
        let v = json!({"a": 1, "b": [true, null, "x"], "c": {}});
        assert_eq!(to_string(&v), r#"{"a":1,"b":[true,null,"x"],"c":{}}"#);
    }

    #[test]
    fn display_matches_to_string() {
        let v = json!([1, {"k": "v"}]);
        assert_eq!(v.to_string(), to_string(&v));
    }

    #[test]
    fn escaping_round_trips() {
        let tricky = "quote\" back\\slash /slash \n\t\r\u{8}\u{c} ctrl\u{1} é 😀";
        let v = json!({"s": tricky});
        let text = to_string(&v);
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn control_chars_use_unicode_escape() {
        let v = json!("\u{1}");
        assert_eq!(to_string(&v), r#""\u0001""#);
    }

    #[test]
    fn pretty_output_shape() {
        let v = json!({"a": [1, 2], "b": {}});
        let p = to_string_pretty(&v);
        assert_eq!(p, "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}");
        // Pretty output re-parses to the same value.
        assert_eq!(parse_value(&p).unwrap(), v);
    }

    #[test]
    fn empty_containers_stay_inline_in_pretty() {
        assert_eq!(to_string_pretty(&json!([])), "[]");
        assert_eq!(to_string_pretty(&json!({})), "{}");
    }

    #[test]
    fn numbers_round_trip() {
        for text in ["0", "-1", "3.5", "1e30", "9007199254740993"] {
            let v = parse_value(text).unwrap();
            assert_eq!(parse_value(&to_string(&v)).unwrap(), v, "for {text}");
        }
    }
}
