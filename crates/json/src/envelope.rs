//! Reader for the shared versioned JSON response envelope.
//!
//! The writer lives in `typefuse-obs` ([`typefuse_obs::envelope()`]),
//! next to the byte-deterministic [`JsonWriter`](typefuse_obs::JsonWriter)
//! every report serializes with; this module is the parsing side, used
//! by everything that reads a typefuse-emitted document back (`bench
//! compare`, the serve protocol client, round-trip tests).
//!
//! An envelope is
//!
//! ```json
//! {"schema_version": 1, "kind": "<kind>", "payload": <value>}
//! ```
//!
//! and [`parse_envelope`] rejects any `schema_version` other than the
//! one this build writes — a future layout must never be silently
//! misread as the current one.

use crate::{parse_value, Value};
use typefuse_obs::ENVELOPE_VERSION;

/// A parsed response envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Envelope layout version (always [`ENVELOPE_VERSION`] after a
    /// successful parse).
    pub schema_version: u64,
    /// Payload shape name (`"metrics"`, `"profile"`, `"bench"`, …).
    pub kind: String,
    /// The wrapped document, unchanged.
    pub payload: Value,
}

impl Envelope {
    /// Parse and check the `kind`, in one step.
    ///
    /// Convenience for readers that only accept one payload shape.
    pub fn expect_kind(text: &str, kind: &str) -> Result<Envelope, String> {
        let env = parse_envelope(text)?;
        if env.kind != kind {
            return Err(format!(
                "unexpected envelope kind `{}` (expected `{kind}`)",
                env.kind
            ));
        }
        Ok(env)
    }
}

/// Parse a versioned envelope, rejecting unknown `schema_version`s.
pub fn parse_envelope(text: &str) -> Result<Envelope, String> {
    let value = parse_value(text).map_err(|e| format!("invalid envelope JSON: {e}"))?;
    let obj = value
        .as_object()
        .ok_or_else(|| "envelope must be a JSON object".to_string())?;
    let version = obj
        .get("schema_version")
        .and_then(|v| v.as_i64())
        .ok_or_else(|| "envelope is missing a numeric `schema_version`".to_string())?;
    if version != ENVELOPE_VERSION as i64 {
        return Err(format!(
            "unsupported schema_version {version} (this build reads version {ENVELOPE_VERSION})"
        ));
    }
    let kind = obj
        .get("kind")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "envelope is missing a string `kind`".to_string())?
        .to_string();
    let payload = obj
        .get("payload")
        .cloned()
        .ok_or_else(|| "envelope is missing `payload`".to_string())?;
    Ok(Envelope {
        schema_version: version as u64,
        kind,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_written_envelope() {
        let text = typefuse_obs::envelope("metrics", r#"{"counters":{"records":3}}"#);
        let env = parse_envelope(&text).unwrap();
        assert_eq!(env.schema_version, ENVELOPE_VERSION);
        assert_eq!(env.kind, "metrics");
        assert_eq!(
            env.payload.get("counters").and_then(|c| c.get("records")),
            Some(&Value::from(3))
        );
    }

    #[test]
    fn rejects_unknown_versions() {
        let err =
            parse_envelope(r#"{"schema_version":99,"kind":"metrics","payload":{}}"#).unwrap_err();
        assert!(err.contains("unsupported schema_version 99"), "{err}");
    }

    #[test]
    fn rejects_missing_fields() {
        assert!(parse_envelope(r#"{"kind":"metrics","payload":{}}"#).is_err());
        assert!(parse_envelope(r#"{"schema_version":1,"payload":{}}"#).is_err());
        assert!(parse_envelope(r#"{"schema_version":1,"kind":"metrics"}"#).is_err());
        assert!(parse_envelope("[1]").is_err());
        assert!(parse_envelope("not json").is_err());
    }

    #[test]
    fn expect_kind_gates_on_kind() {
        let text = typefuse_obs::envelope("bench", "{}");
        assert!(Envelope::expect_kind(&text, "bench").is_ok());
        let err = Envelope::expect_kind(&text, "metrics").unwrap_err();
        assert!(err.contains("unexpected envelope kind `bench`"), "{err}");
    }
}
