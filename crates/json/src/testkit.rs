//! Proptest strategies for random JSON values (feature `testkit`).
//!
//! Shared by the property-test suites of the downstream crates: the
//! fusion laws (commutativity, associativity, correctness) are tested
//! against values drawn from these strategies.

use crate::number::Number;
use crate::value::{Map, Value};
use proptest::prelude::*;

/// Strategy for field keys: short, biased towards collisions so that
/// record fusion actually exercises the matched-key path.
pub fn arb_key() -> impl Strategy<Value = String> {
    prop_oneof![
        4 => prop::sample::select(vec![
            "a", "b", "c", "id", "name", "tags", "meta", "value", "items",
        ])
        .prop_map(str::to_string),
        1 => "[a-z]{1,6}",
    ]
}

/// Strategy for scalar JSON values.
pub fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(|i| Value::Number(Number::Int(i))),
        (-1.0e9f64..1.0e9).prop_map(|f| Value::Number(Number::Float(f))),
        "[ -~]{0,12}".prop_map(Value::String),
    ]
}

/// Strategy for arbitrary JSON values with bounded depth and width.
pub fn arb_value() -> impl Strategy<Value = Value> {
    arb_value_sized(4, 6)
}

/// Strategy with explicit recursion `depth` and container `width` bounds.
pub fn arb_value_sized(depth: u32, width: usize) -> impl Strategy<Value = Value> {
    arb_scalar().prop_recursive(depth, 64, width as u32, move |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..=width).prop_map(Value::Array),
            prop::collection::vec((arb_key(), inner), 0..=width).prop_map(|pairs| {
                let mut m = Map::new();
                for (k, v) in pairs {
                    m.insert(k, v); // deduplicates colliding keys
                }
                Value::Object(m)
            }),
        ]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_value, to_string};

    proptest! {
        #[test]
        fn generated_values_round_trip_through_text(v in arb_value()) {
            let text = to_string(&v);
            let back = parse_value(&text).unwrap();
            prop_assert_eq!(back, v);
        }

        #[test]
        fn pretty_form_parses_to_same_value(v in arb_value()) {
            let text = crate::to_string_pretty(&v);
            prop_assert_eq!(parse_value(&text).unwrap(), v);
        }

        #[test]
        fn tree_size_positive_and_depth_bounded(v in arb_value_sized(3, 4)) {
            prop_assert!(v.tree_size() >= 1);
            prop_assert!(v.depth() >= 1);
            prop_assert!(v.depth() <= 4 + 1);
        }
    }
}

#[cfg(test)]
mod robustness {
    use crate::parse::{Parser, ParserOptions};
    use proptest::prelude::*;

    proptest! {
        // The parser must never panic, whatever bytes arrive (the paper's
        // pipelines ingest uncontrolled remote data).
        #[test]
        fn parser_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = Parser::new(&bytes).parse_complete();
        }

        #[test]
        fn parser_never_panics_on_arbitrary_text(text in "\\PC{0,64}") {
            let _ = crate::parse_value(&text);
        }

        #[test]
        fn event_parser_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let mut p = crate::events::EventParser::with_options(
                &bytes,
                ParserOptions::default(),
            );
            for event in &mut p {
                if event.is_err() {
                    break;
                }
            }
        }

        // Mutating valid JSON by one byte must never panic either.
        #[test]
        fn parser_survives_single_byte_corruption(
            v in super::arb_value(),
            pos in any::<prop::sample::Index>(),
            byte in any::<u8>(),
        ) {
            let mut bytes = crate::to_string(&v).into_bytes();
            if !bytes.is_empty() {
                let i = pos.index(bytes.len());
                bytes[i] = byte;
            }
            let _ = Parser::new(&bytes).parse_complete();
        }
    }
}
