//! Proptest strategies and a fault-injection harness (feature `testkit`).
//!
//! Shared by the property-test suites of the downstream crates: the
//! fusion laws (commutativity, associativity, correctness) are tested
//! against values drawn from these strategies, and the ingestion
//! fault-tolerance tests drive corrupt/flaky inputs through
//! [`FaultyReader`].

use crate::number::Number;
use crate::value::{Map, Value};
use proptest::prelude::*;
use std::io::Read;

/// A fault to inject at a byte offset of the wrapped stream.
///
/// Offsets are positions in the *underlying* stream; `FaultyReader`
/// tracks how many bytes it has produced and triggers each fault exactly
/// when the read window reaches its offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Replace the byte at `offset` with `byte` (corruption in flight).
    CorruptByte {
        /// Stream position of the byte to replace.
        offset: u64,
        /// Replacement byte.
        byte: u8,
    },
    /// End the stream at `offset` as if the file were cut mid-record.
    TruncateAt {
        /// Stream position after which reads return 0 bytes.
        offset: u64,
    },
    /// Fail with a *transient* error `times` times when the read window
    /// reaches `offset`, then continue normally (exercises retry).
    TransientAt {
        /// Stream position at which the error fires.
        offset: u64,
        /// The transient error kind (`Interrupted` or `WouldBlock`).
        kind: std::io::ErrorKind,
        /// How many consecutive failures before reads succeed again.
        times: u32,
    },
    /// Fail *permanently* with `kind` once the read window reaches
    /// `offset` (exercises mid-stream I/O error paths).
    FailAt {
        /// Stream position at which every subsequent read fails.
        offset: u64,
        /// The error kind to return.
        kind: std::io::ErrorKind,
    },
    /// Cap every read at `max` bytes (exercises partial-read handling).
    ShortReads {
        /// Maximum bytes returned per `read` call.
        max: usize,
    },
}

/// A wrapping [`Read`] source that injects [`Fault`]s at configurable
/// offsets: corrupt bytes, mid-record truncation, transient errors, and
/// short reads. Deterministic — the same faults over the same input
/// always produce the same byte stream and error sequence.
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    faults: Vec<Fault>,
    pos: u64,
    transient_fired: Vec<u32>,
}

impl<R: Read> FaultyReader<R> {
    /// Wrap `inner`, injecting each of `faults`.
    pub fn new(inner: R, faults: Vec<Fault>) -> Self {
        let transient_fired = vec![0; faults.len()];
        FaultyReader {
            inner,
            faults,
            pos: 0,
            transient_fired,
        }
    }

    /// Bytes produced so far.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// The earliest fault boundary strictly after `pos`, so a read never
    /// straddles a fault offset.
    fn next_boundary(&self) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::CorruptByte { offset, .. } => Some(offset + 1),
                Fault::TruncateAt { offset }
                | Fault::TransientAt { offset, .. }
                | Fault::FailAt { offset, .. } => Some(offset),
                Fault::ShortReads { .. } => None,
            })
            .filter(|&b| b > self.pos)
            .min()
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut cap = buf.len();
        for (i, fault) in self.faults.iter().enumerate() {
            match *fault {
                Fault::TruncateAt { offset } if self.pos >= offset => return Ok(0),
                Fault::FailAt { offset, kind } if self.pos >= offset => {
                    return Err(std::io::Error::new(kind, "injected failure"));
                }
                Fault::TransientAt {
                    offset,
                    kind,
                    times,
                } if self.pos >= offset && self.transient_fired[i] < times => {
                    self.transient_fired[i] += 1;
                    return Err(std::io::Error::new(kind, "injected transient"));
                }
                Fault::ShortReads { max } => cap = cap.min(max.max(1)),
                _ => {}
            }
        }
        if let Some(boundary) = self.next_boundary() {
            cap = cap.min((boundary - self.pos) as usize);
        }
        if cap == 0 {
            return Ok(0);
        }
        let n = self.inner.read(&mut buf[..cap])?;
        for fault in &self.faults {
            if let Fault::CorruptByte { offset, byte } = *fault {
                if offset >= self.pos && offset < self.pos + n as u64 {
                    buf[(offset - self.pos) as usize] = byte;
                }
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

/// Strategy for field keys: short, biased towards collisions so that
/// record fusion actually exercises the matched-key path.
pub fn arb_key() -> impl Strategy<Value = String> {
    prop_oneof![
        4 => prop::sample::select(vec![
            "a", "b", "c", "id", "name", "tags", "meta", "value", "items",
        ])
        .prop_map(str::to_string),
        1 => "[a-z]{1,6}",
    ]
}

/// Strategy for scalar JSON values.
pub fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(|i| Value::Number(Number::Int(i))),
        (-1.0e9f64..1.0e9).prop_map(|f| Value::Number(Number::Float(f))),
        "[ -~]{0,12}".prop_map(Value::String),
    ]
}

/// Strategy for arbitrary JSON values with bounded depth and width.
pub fn arb_value() -> impl Strategy<Value = Value> {
    arb_value_sized(4, 6)
}

/// Strategy with explicit recursion `depth` and container `width` bounds.
pub fn arb_value_sized(depth: u32, width: usize) -> impl Strategy<Value = Value> {
    arb_scalar().prop_recursive(depth, 64, width as u32, move |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..=width).prop_map(Value::Array),
            prop::collection::vec((arb_key(), inner), 0..=width).prop_map(|pairs| {
                let mut m = Map::new();
                for (k, v) in pairs {
                    m.insert(k, v); // deduplicates colliding keys
                }
                Value::Object(m)
            }),
        ]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_value, to_string};

    proptest! {
        #[test]
        fn generated_values_round_trip_through_text(v in arb_value()) {
            let text = to_string(&v);
            let back = parse_value(&text).unwrap();
            prop_assert_eq!(back, v);
        }

        #[test]
        fn pretty_form_parses_to_same_value(v in arb_value()) {
            let text = crate::to_string_pretty(&v);
            prop_assert_eq!(parse_value(&text).unwrap(), v);
        }

        #[test]
        fn tree_size_positive_and_depth_bounded(v in arb_value_sized(3, 4)) {
            prop_assert!(v.tree_size() >= 1);
            prop_assert!(v.depth() >= 1);
            prop_assert!(v.depth() <= 4 + 1);
        }
    }
}

#[cfg(test)]
mod robustness {
    use crate::parse::{Parser, ParserOptions};
    use proptest::prelude::*;

    proptest! {
        // The parser must never panic, whatever bytes arrive (the paper's
        // pipelines ingest uncontrolled remote data).
        #[test]
        fn parser_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = Parser::new(&bytes).parse_complete();
        }

        #[test]
        fn parser_never_panics_on_arbitrary_text(text in "\\PC{0,64}") {
            let _ = crate::parse_value(&text);
        }

        #[test]
        fn event_parser_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let mut p = crate::events::EventParser::with_options(
                &bytes,
                ParserOptions::default(),
            );
            for event in &mut p {
                if event.is_err() {
                    break;
                }
            }
        }

        // Mutating valid JSON by one byte must never panic either.
        #[test]
        fn parser_survives_single_byte_corruption(
            v in super::arb_value(),
            pos in any::<prop::sample::Index>(),
            byte in any::<u8>(),
        ) {
            let mut bytes = crate::to_string(&v).into_bytes();
            if !bytes.is_empty() {
                let i = pos.index(bytes.len());
                bytes[i] = byte;
            }
            let _ = Parser::new(&bytes).parse_complete();
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::{Fault, FaultyReader};
    use std::io::{ErrorKind, Read};

    fn drain(mut r: impl Read) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        r.read_to_end(&mut out)?;
        Ok(out)
    }

    #[test]
    fn corrupt_byte_replaces_exactly_one_byte() {
        let r = FaultyReader::new(
            &b"hello world"[..],
            vec![Fault::CorruptByte {
                offset: 4,
                byte: b'!',
            }],
        );
        assert_eq!(drain(r).unwrap(), b"hell! world");
    }

    #[test]
    fn truncate_cuts_the_stream() {
        let r = FaultyReader::new(&b"hello world"[..], vec![Fault::TruncateAt { offset: 5 }]);
        assert_eq!(drain(r).unwrap(), b"hello");
    }

    #[test]
    fn transient_fires_the_configured_number_of_times() {
        let mut r = FaultyReader::new(
            &b"abc"[..],
            vec![Fault::TransientAt {
                offset: 1,
                kind: ErrorKind::Interrupted,
                times: 2,
            }],
        );
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf).unwrap(), 1, "stops at the fault boundary");
        assert_eq!(r.read(&mut buf).unwrap_err().kind(), ErrorKind::Interrupted);
        assert_eq!(r.read(&mut buf).unwrap_err().kind(), ErrorKind::Interrupted);
        assert_eq!(r.read(&mut buf).unwrap(), 2);
        assert_eq!(r.position(), 3);
    }

    #[test]
    fn fail_at_is_permanent() {
        let mut r = FaultyReader::new(
            &b"abcdef"[..],
            vec![Fault::FailAt {
                offset: 2,
                kind: ErrorKind::ConnectionReset,
            }],
        );
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf).unwrap(), 2);
        assert_eq!(
            r.read(&mut buf).unwrap_err().kind(),
            ErrorKind::ConnectionReset
        );
        assert_eq!(
            r.read(&mut buf).unwrap_err().kind(),
            ErrorKind::ConnectionReset
        );
    }

    #[test]
    fn short_reads_cap_every_call() {
        let mut r = FaultyReader::new(&b"abcdef"[..], vec![Fault::ShortReads { max: 2 }]);
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf).unwrap(), 2);
        assert_eq!(r.read(&mut buf).unwrap(), 2);
        assert_eq!(r.read(&mut buf).unwrap(), 2);
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }
}
