//! Integration tests driving the real `typefuse` binary.

use std::io::Write;
use std::process::{Command, Output, Stdio};

fn typefuse(args: &[&str], stdin: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_typefuse"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    cmd.stdin(if stdin.is_some() {
        Stdio::piped()
    } else {
        Stdio::null()
    });
    let mut child = cmd.spawn().expect("binary spawns");
    if let Some(input) = stdin {
        // The binary may exit (e.g. on a usage error) before reading all
        // of stdin; a broken pipe here is expected, not a test failure.
        let _ = child
            .stdin
            .as_mut()
            .expect("stdin piped")
            .write_all(input.as_bytes());
    }
    child.wait_with_output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_prints_usage() {
    let out = typefuse(&["help"], None);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn no_args_is_a_usage_error() {
    let out = typefuse(&[], None);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("USAGE"));
}

#[test]
fn unknown_command_is_a_usage_error() {
    let out = typefuse(&["frobnicate"], None);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn infer_from_stdin_text_format() {
    let out = typefuse(
        &["infer", "-", "--format", "text"],
        Some("{\"a\":1}\n{\"a\":\"x\",\"b\":true}\n"),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(stdout(&out).trim(), "{a: Num + Str, b: Bool?}");
}

#[test]
fn infer_stats_go_to_stderr() {
    let out = typefuse(
        &["infer", "-", "--format", "text", "--stats"],
        Some("{\"a\":1}\n{\"a\":2}\n"),
    );
    assert!(out.status.success());
    let err = stderr(&out);
    assert!(err.contains("records           2"), "stderr: {err}");
    assert!(err.contains("distinct types    1"));
}

#[test]
fn infer_json_schema_format() {
    let out = typefuse(
        &["infer", "-", "--format", "json-schema"],
        Some("{\"a\":1}\n"),
    );
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("\"$schema\""));
    assert!(text.contains("\"properties\""));
}

#[test]
fn infer_rejects_bad_json() {
    let out = typefuse(&["infer", "-"], Some("{oops\n"));
    assert_eq!(out.status.code(), Some(3), "parse errors exit 3");
    assert!(stderr(&out).contains("parse error"));
}

#[test]
fn infer_rejects_unknown_format() {
    let out = typefuse(&["infer", "-", "--format", "yaml"], Some("{}\n"));
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn generate_then_infer_pipe() {
    let gen = typefuse(
        &[
            "generate",
            "--profile",
            "github",
            "--records",
            "50",
            "--seed",
            "3",
        ],
        None,
    );
    assert!(gen.status.success());
    let ndjson = stdout(&gen);
    assert_eq!(ndjson.lines().count(), 50);

    let inf = typefuse(&["infer", "-", "--format", "text"], Some(&ndjson));
    assert!(inf.status.success());
    let schema = stdout(&inf);
    assert!(schema.contains("merged_at"), "schema: {schema}");
}

#[test]
fn generate_is_deterministic() {
    let a = typefuse(
        &["generate", "--profile", "twitter", "--records", "5"],
        None,
    );
    let b = typefuse(
        &["generate", "--profile", "twitter", "--records", "5"],
        None,
    );
    assert_eq!(stdout(&a), stdout(&b));
}

#[test]
fn generate_requires_profile() {
    let out = typefuse(&["generate"], None);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--profile"));
}

#[test]
fn generate_rejects_unknown_profile() {
    let out = typefuse(&["generate", "--profile", "hackernews"], None);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn stats_reports_counts() {
    let out = typefuse(&["stats", "-"], Some("{\"a\":1}\n{\"a\":{\"b\":2}}\n"));
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("records     2"));
    assert!(text.contains("max depth   3"));
}

#[test]
fn check_accepts_conforming_data() {
    let dir = std::env::temp_dir().join("typefuse-cli-test-ok");
    std::fs::create_dir_all(&dir).unwrap();
    let schema_path = dir.join("schema.txt");
    std::fs::write(&schema_path, "{a: Num, b: Str?}\n").unwrap();

    let out = typefuse(
        &["check", "-", "--schema", schema_path.to_str().unwrap()],
        Some("{\"a\":1}\n{\"a\":2,\"b\":\"x\"}\n"),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("2 of 2 records conform"));
}

#[test]
fn check_rejects_nonconforming_data() {
    let dir = std::env::temp_dir().join("typefuse-cli-test-bad");
    std::fs::create_dir_all(&dir).unwrap();
    let schema_path = dir.join("schema.txt");
    std::fs::write(&schema_path, "{a: Num}\n").unwrap();

    let out = typefuse(
        &["check", "-", "--schema", schema_path.to_str().unwrap()],
        Some("{\"a\":1}\n{\"a\":\"nope\"}\n"),
    );
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("record 2"));
}

#[test]
fn sim_single_placement_idles_nodes() {
    let out = typefuse(&["sim", "--placement", "single", "--blocks", "24"], None);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("busy nodes   2 of 6"), "output: {text}");
}

#[test]
fn sim_spread_placement_uses_all_nodes() {
    let out = typefuse(&["sim", "--placement", "spread", "--blocks", "24"], None);
    assert!(out.status.success());
    assert!(stdout(&out).contains("busy nodes   6 of 6"));
}

#[test]
fn sim_rejects_unknown_placement() {
    let out = typefuse(&["sim", "--placement", "everywhere"], None);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unexpected_argument_is_reported() {
    let out = typefuse(&["stats", "-", "--bogus"], None);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--bogus"));
}

#[test]
fn diff_reports_drift_between_datasets() {
    let dir = std::env::temp_dir().join("typefuse-cli-test-diff");
    std::fs::create_dir_all(&dir).unwrap();
    let old = dir.join("old.ndjson");
    let new = dir.join("new.ndjson");
    std::fs::write(&old, "{\"id\":1,\"name\":\"a\"}\n").unwrap();
    std::fs::write(&new, "{\"id\":\"x\",\"name\":\"a\",\"tags\":[1]}\n").unwrap();
    let out = typefuse(
        &["diff", old.to_str().unwrap(), new.to_str().unwrap()],
        None,
    );
    assert_eq!(out.status.code(), Some(1), "drift exits non-zero");
    let text = stdout(&out);
    assert!(text.contains("+ $.tags (new)"), "output: {text}");
    assert!(text.contains("~ $.id: Num"), "output: {text}");
}

#[test]
fn diff_of_identical_data_is_clean() {
    let dir = std::env::temp_dir().join("typefuse-cli-test-diff2");
    std::fs::create_dir_all(&dir).unwrap();
    let f = dir.join("same.ndjson");
    std::fs::write(&f, "{\"a\":1}\n").unwrap();
    let out = typefuse(&["diff", f.to_str().unwrap(), f.to_str().unwrap()], None);
    assert!(out.status.success());
    assert!(stdout(&out).contains("no structural changes"));
}

#[test]
fn diff_schemas_mode() {
    let dir = std::env::temp_dir().join("typefuse-cli-test-diff3");
    std::fs::create_dir_all(&dir).unwrap();
    let old = dir.join("old.schema");
    let new = dir.join("new.schema");
    std::fs::write(&old, "{a: Num}\n").unwrap();
    std::fs::write(&new, "{a: Num?}\n").unwrap();
    let out = typefuse(
        &[
            "diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--schemas",
        ],
        None,
    );
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("mandatory → optional"));
}

#[test]
fn streaming_infer_matches_batch() {
    let data = "{\"a\":1}\n{\"a\":\"x\",\"b\":[1,2]}\n{\"b\":[]}\n";
    let batch = typefuse(&["infer", "-", "--format", "text"], Some(data));
    let streaming = typefuse(
        &["infer", "-", "--format", "text", "--streaming"],
        Some(data),
    );
    assert!(batch.status.success() && streaming.status.success());
    assert_eq!(stdout(&batch), stdout(&streaming));
}

#[test]
fn streaming_rejects_stats() {
    let out = typefuse(&["infer", "-", "--streaming", "--stats"], Some("{}\n"));
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn streaming_reports_line_numbers_on_errors() {
    let out = typefuse(&["infer", "-", "--streaming"], Some("{}\n{bad\n"));
    assert_eq!(out.status.code(), Some(3), "parse errors exit 3");
    assert!(stderr(&out).contains("line 2"), "stderr: {}", stderr(&out));
}

#[test]
fn query_runs_checked_pipelines() {
    let dir = std::env::temp_dir().join("typefuse-cli-test-query");
    std::fs::create_dir_all(&dir).unwrap();
    let script = dir.join("q.tfq");
    std::fs::write(&script, "filter $.n > 1\nproject $.n\n").unwrap();
    let out = typefuse(
        &["query", "-", "--script", script.to_str().unwrap()],
        Some("{\"n\":1}\n{\"n\":2}\n{\"n\":3}\n"),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(stdout(&out), "{\"n\":2}\n{\"n\":3}\n");
    assert!(stderr(&out).contains("output schema: {n: Num}"));
}

#[test]
fn query_rejects_bad_paths_statically() {
    let dir = std::env::temp_dir().join("typefuse-cli-test-query2");
    std::fs::create_dir_all(&dir).unwrap();
    let script = dir.join("q.tfq");
    std::fs::write(&script, "project $.typo\n").unwrap();
    let out = typefuse(
        &[
            "query",
            "-",
            "--script",
            script.to_str().unwrap(),
            "--check-only",
        ],
        Some("{\"n\":1}\n"),
    );
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("type error"));
}

#[test]
fn query_against_explicit_schema() {
    let dir = std::env::temp_dir().join("typefuse-cli-test-query3");
    std::fs::create_dir_all(&dir).unwrap();
    let script = dir.join("q.tfq");
    let schema = dir.join("s.schema");
    std::fs::write(&script, "filter exists $.extra\n").unwrap();
    std::fs::write(&schema, "{n: Num}\n").unwrap();
    let out = typefuse(
        &[
            "query",
            "-",
            "--script",
            script.to_str().unwrap(),
            "--schema",
            schema.to_str().unwrap(),
            "--check-only",
        ],
        Some("{\"n\":1}\n"),
    );
    // $.extra is unknown in the declared schema even though checking data
    // alone would also reject it here; the point is the schema wins.
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn streaming_file_uses_parallel_splits() {
    let dir = std::env::temp_dir().join("typefuse-cli-test-splits");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("data.ndjson");
    let contents: String = (0..200)
        .map(|i| format!("{{\"n\":{i},\"s\":\"{}\"}}\n", "x".repeat(i % 40)))
        .collect();
    std::fs::write(&path, &contents).unwrap();

    let parallel = typefuse(
        &[
            "infer",
            path.to_str().unwrap(),
            "--streaming",
            "--format",
            "text",
        ],
        None,
    );
    let batch = typefuse(&["infer", path.to_str().unwrap(), "--format", "text"], None);
    assert!(parallel.status.success(), "stderr: {}", stderr(&parallel));
    assert_eq!(stdout(&parallel), stdout(&batch));
}

#[test]
fn registry_publish_and_gate() {
    let dir = std::env::temp_dir().join("typefuse-cli-test-registry");
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("reg.ndjson");
    let _ = std::fs::remove_file(&log);
    let log = log.to_str().unwrap();

    // v1 inferred from data.
    let out = typefuse(
        &["registry", "publish", "events", "-", "--log", log],
        Some("{\"id\":1,\"name\":\"a\"}\n"),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("published version 1"));

    // Widened v2 passes the backward gate.
    let out = typefuse(
        &["registry", "publish", "events", "-", "--log", log],
        Some("{\"id\":1,\"name\":\"a\",\"tags\":[\"x\"]}\n{\"id\":2,\"name\":\"b\"}\n"),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("published version 2"));

    // Narrowing is rejected with the changes listed.
    let out = typefuse(
        &["registry", "publish", "events", "-", "--log", log],
        Some("{\"id\":1}\n"),
    );
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("not backward-compatible"));
    assert!(stderr(&out).contains("$.name"), "stderr: {}", stderr(&out));

    // History and diff work.
    let out = typefuse(&["registry", "history", "events", "--log", log], None);
    assert!(out.status.success());
    assert_eq!(stdout(&out).lines().count(), 2);

    let out = typefuse(
        &["registry", "diff", "events", "1", "2", "--log", log],
        None,
    );
    assert!(out.status.success());
    assert!(stdout(&out).contains("+ $.tags (new)"));

    let out = typefuse(&["registry", "names", "--log", log], None);
    assert_eq!(stdout(&out).trim(), "events");

    let out = typefuse(&["registry", "latest", "events", "--log", log], None);
    assert!(stdout(&out).contains("tags"));
}

#[test]
fn registry_usage_errors() {
    let out = typefuse(&["registry"], None);
    assert_eq!(out.status.code(), Some(2));
    let out = typefuse(&["registry", "frobnicate"], None);
    assert_eq!(out.status.code(), Some(2));
    let out = typefuse(&["registry", "publish"], None);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn infer_metrics_json_emits_a_structured_report() {
    let dir = std::env::temp_dir().join("typefuse-cli-test-metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.ndjson");
    let contents: String = (0..50)
        .map(|i| format!("{{\"n\":{i},\"tags\":[\"a\",\"b\"]}}\n"))
        .collect();
    std::fs::write(&data, &contents).unwrap();
    let metrics = dir.join("metrics.json");
    let trace = dir.join("trace.json");

    let out = typefuse(
        &[
            "infer",
            data.to_str().unwrap(),
            "--format",
            "text",
            "--metrics-json",
            metrics.to_str().unwrap(),
            "--trace-json",
            trace.to_str().unwrap(),
        ],
        None,
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // The report is a versioned envelope with the promised keys and
    // real counts under /payload.
    let text = std::fs::read_to_string(&metrics).unwrap();
    let envelope =
        typefuse_json::Envelope::expect_kind(&text, "metrics").expect("metrics envelope parses");
    assert_eq!(envelope.schema_version, 1);
    let report = typefuse_json::parse_value(&text).expect("metrics report is valid JSON");
    assert_eq!(
        report
            .pointer("/payload/counters/records")
            .unwrap()
            .as_i64(),
        Some(50)
    );
    assert_eq!(
        report
            .pointer("/payload/counters/json.records")
            .unwrap()
            .as_i64(),
        Some(50)
    );
    assert_eq!(
        report
            .pointer("/payload/counters/json.bytes")
            .unwrap()
            .as_i64(),
        Some(contents.len() as i64)
    );
    assert!(
        report
            .pointer("/payload/counters/fuse.calls")
            .unwrap()
            .as_i64()
            .unwrap()
            > 0
    );
    assert!(report
        .pointer("/payload/histograms/fuse.union_width/count")
        .is_some());
    assert!(report
        .pointer("/payload/histograms/infer.record_width/count")
        .is_some());
    assert!(report
        .pointer("/payload/spans/pipeline.map/total_ns")
        .is_some());
    let stages = report
        .pointer("/payload/stages")
        .unwrap()
        .as_array()
        .unwrap();
    let names: Vec<&str> = stages
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names, ["map", "reduce.local_fold"]);
    let task = stages[0].get("tasks").unwrap().as_array().unwrap()[0].clone();
    assert!(task.get("queue_wait_ns").is_some());
    assert!(task.get("execute_ns").is_some());

    // The trace is valid Chrome trace-event JSON with complete events.
    let trace = typefuse_json::parse_value(&std::fs::read_to_string(&trace).unwrap())
        .expect("trace is valid JSON");
    let events = trace.pointer("/traceEvents").unwrap().as_array().unwrap();
    assert!(!events.is_empty());
    for e in events {
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        assert!(e.get("ts").is_some() && e.get("dur").is_some());
    }
    assert!(events
        .iter()
        .any(|e| e.get("name").unwrap().as_str() == Some("pipeline.reduce")));
}

#[test]
fn infer_streaming_metrics_count_splits() {
    let dir = std::env::temp_dir().join("typefuse-cli-test-metrics-streaming");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.ndjson");
    let contents: String = (0..80).map(|i| format!("{{\"n\":{i}}}\n")).collect();
    std::fs::write(&data, &contents).unwrap();
    let metrics = dir.join("metrics.json");

    let out = typefuse(
        &[
            "infer",
            data.to_str().unwrap(),
            "--streaming",
            "--format",
            "text",
            "--metrics-json",
            metrics.to_str().unwrap(),
        ],
        None,
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let report = typefuse_json::parse_value(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(
        report
            .pointer("/payload/counters/records")
            .unwrap()
            .as_i64(),
        Some(80)
    );
    assert!(
        report
            .pointer("/payload/counters/streaming.splits")
            .unwrap()
            .as_i64()
            .unwrap()
            >= 1
    );
}

#[test]
fn counting_reports_the_real_record_total() {
    let out = typefuse(
        &["infer", "-", "--counting", "--format", "text"],
        Some("{\"a\":1}\n{\"a\":2,\"b\":[1]}\n{\"a\":3}\n"),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("records 3"), "stderr: {err}");
    assert!(err.contains("path"), "stderr: {err}");
    // Counting alone skips the timed pipeline, so no timings are shown.
    assert!(!err.contains("map 0.000s"), "stderr: {err}");
}

#[test]
fn progress_flag_is_accepted() {
    let out = typefuse(
        &["infer", "-", "--progress", "--format", "text"],
        Some("{\"a\":1}\n"),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("{a: Num}"));
}

// ---- profiling & explain (data-plane observability) ---------------------

/// Synthetic dataset with one missing key and one mixed-type field at
/// exactly known lines: `b` is absent starting at line 2, and `a`'s
/// `Str` branch is introduced at line 4.
const PROVENANCE_DATA: &str = "\
{\"a\":1,\"b\":true}\n\
{\"a\":2}\n\
{\"a\":3,\"b\":false}\n\
{\"a\":\"x\",\"b\":true}\n";

#[test]
fn explain_reports_exact_provenance_lines() {
    let mut expected = None;
    for workers in ["1", "4"] {
        let out = typefuse(
            &["explain", ".a", "--workers", workers, "--partitions", "3"],
            Some(PROVENANCE_DATA),
        );
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("$.a: Num + Str"), "stdout: {text}");
        assert!(
            text.contains("present in 4/4 records (100.0%), first seen at line 1"),
            "stdout: {text}"
        );
        assert!(text.contains("required:"), "stdout: {text}");
        assert!(
            text.contains("branch Num: introduced at line 1 (3 occurrences)"),
            "stdout: {text}"
        );
        assert!(
            text.contains("branch Str: introduced at line 4 (1 occurrence)"),
            "stdout: {text}"
        );
        // Thread count cannot change the output.
        match &expected {
            None => expected = Some(text),
            Some(prev) => assert_eq!(&text, prev, "workers={workers} differs"),
        }
    }
}

#[test]
fn explain_reports_the_demoting_line() {
    for workers in ["1", "4"] {
        let out = typefuse(
            &["explain", "$.b", "--workers", workers],
            Some(PROVENANCE_DATA),
        );
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("$.b: Bool"), "stdout: {text}");
        assert!(
            text.contains("optional: missing at line 2"),
            "workers={workers}, stdout: {text}"
        );
        assert!(text.contains("(optional)"), "stdout: {text}");
    }
}

#[test]
fn explain_rejects_bad_and_missing_paths() {
    let out = typefuse(&["explain", "$..broken"], Some(PROVENANCE_DATA));
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("malformed path"));

    let out = typefuse(&["explain", ".nope"], Some(PROVENANCE_DATA));
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("does not occur"));
}

#[test]
fn explain_requires_a_path() {
    let out = typefuse(&["explain"], Some("{}\n"));
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("requires a path"));
}

#[test]
fn profile_json_is_identical_across_workers_and_map_paths() {
    let dir = std::env::temp_dir();
    let mut reports = Vec::new();
    for (i, (workers, map_path)) in [
        ("1", "events"),
        ("4", "events"),
        ("1", "value"),
        ("4", "value"),
    ]
    .iter()
    .enumerate()
    {
        let path = dir.join(format!(
            "typefuse-test-profile-{}-{i}.json",
            std::process::id()
        ));
        let path_str = path.to_str().unwrap();
        let out = typefuse(
            &[
                "infer",
                "-",
                "--format",
                "text",
                "--workers",
                workers,
                "--partitions",
                "3",
                "--map-path",
                map_path,
                "--profile-json",
                path_str,
            ],
            Some(PROVENANCE_DATA),
        );
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        assert_eq!(stdout(&out).trim(), "{a: Num + Str, b: Bool?}");
        reports.push(std::fs::read_to_string(&path).expect("profile written"));
        let _ = std::fs::remove_file(&path);
    }
    for report in &reports[1..] {
        assert_eq!(report, &reports[0], "profile JSON must be byte-identical");
    }
    let envelope =
        typefuse_json::Envelope::expect_kind(&reports[0], "profile").expect("profile envelope");
    assert_eq!(envelope.schema_version, 1);
    assert!(
        reports[0].contains("\"first_absent_line\":2"),
        "{}",
        reports[0]
    );
    assert!(reports[0].contains("\"records\":4"));
}

#[test]
fn profile_json_conflicts_with_streaming_counting_stats() {
    for extra in ["--streaming", "--counting", "--stats"] {
        let out = typefuse(
            &["infer", "-", "--profile-json", "/tmp/unused.json", extra],
            Some("{}\n"),
        );
        assert_eq!(out.status.code(), Some(2), "{extra}");
        assert!(stderr(&out).contains("incompatible"), "{extra}");
    }
}

#[test]
fn stats_and_check_write_metrics_json() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();

    let stats_path = dir.join(format!("typefuse-test-stats-{pid}.json"));
    let out = typefuse(
        &["stats", "-", "--metrics-json", stats_path.to_str().unwrap()],
        Some("{\"a\":1}\n{\"a\":2}\n"),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let metrics = std::fs::read_to_string(&stats_path).expect("metrics written");
    let _ = std::fs::remove_file(&stats_path);
    typefuse_json::Envelope::expect_kind(&metrics, "metrics").expect("stats metrics envelope");
    assert!(metrics.contains("\"records\":2"), "{metrics}");
    assert!(metrics.contains("stats.read"), "{metrics}");

    let schema_path = dir.join(format!("typefuse-test-schema-{pid}.txt"));
    std::fs::write(&schema_path, "{a: Num}").unwrap();
    let check_path = dir.join(format!("typefuse-test-check-{pid}.json"));
    let out = typefuse(
        &[
            "check",
            "-",
            "--schema",
            schema_path.to_str().unwrap(),
            "--metrics-json",
            check_path.to_str().unwrap(),
        ],
        Some("{\"a\":1}\n{\"a\":2}\n"),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let metrics = std::fs::read_to_string(&check_path).expect("metrics written");
    let _ = std::fs::remove_file(&schema_path);
    let _ = std::fs::remove_file(&check_path);
    typefuse_json::Envelope::expect_kind(&metrics, "metrics").expect("check metrics envelope");
    assert!(metrics.contains("\"check.conforming\":2"), "{metrics}");
    assert!(metrics.contains("\"check.failures\":0"), "{metrics}");
}

// ---- Fault-tolerant ingestion (--on-error and friends) ----------------

const DIRTY: &str = "{\"a\":1}\n{oops\n{\"a\":2,\"b\":\"x\"}\nnot json\n{\"b\":\"y\"}\n";

#[test]
fn skip_policy_infers_the_clean_subset() {
    let skipped = typefuse(
        &["infer", "-", "--format", "text", "--on-error", "skip"],
        Some(DIRTY),
    );
    assert!(skipped.status.success(), "stderr: {}", stderr(&skipped));
    let clean = typefuse(
        &["infer", "-", "--format", "text"],
        Some("{\"a\":1}\n{\"a\":2,\"b\":\"x\"}\n{\"b\":\"y\"}\n"),
    );
    assert_eq!(stdout(&skipped), stdout(&clean));
    assert!(
        stderr(&skipped).contains("skipped 2 bad record(s)"),
        "stderr: {}",
        stderr(&skipped)
    );
}

#[test]
fn skip_policy_agrees_across_routes() {
    for route in [
        vec!["--map-path", "events"],
        vec!["--map-path", "value"],
        vec!["--dedup", "on"],
        vec!["--streaming"],
    ] {
        let mut args = vec!["infer", "-", "--format", "text", "--on-error", "skip"];
        args.extend(&route);
        let out = typefuse(&args, Some(DIRTY));
        assert!(out.status.success(), "{route:?}: {}", stderr(&out));
        let baseline = typefuse(
            &["infer", "-", "--format", "text", "--on-error", "skip"],
            Some(DIRTY),
        );
        assert_eq!(stdout(&out), stdout(&baseline), "route {route:?}");
    }
}

#[test]
fn max_errors_budget_exits_5() {
    let out = typefuse(
        &["infer", "-", "--on-error", "skip", "--max-errors", "1"],
        Some(DIRTY),
    );
    assert_eq!(out.status.code(), Some(5), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("error budget exceeded"));

    let out = typefuse(
        &["infer", "-", "--on-error", "skip", "--max-errors", "2"],
        Some(DIRTY),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
}

#[test]
fn quarantine_writes_the_sidecar() {
    let dir = std::env::temp_dir().join("typefuse-cli-test-quarantine");
    std::fs::create_dir_all(&dir).unwrap();
    let sink = dir.join(format!("bad-{}.ndjson", std::process::id()));
    let out = typefuse(
        &["infer", "-", "--quarantine", sink.to_str().unwrap()],
        Some(DIRTY),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("quarantined to"), "{}", stderr(&out));
    let sidecar = std::fs::read_to_string(&sink).expect("sidecar written");
    let _ = std::fs::remove_file(&sink);
    let lines: Vec<&str> = sidecar.lines().collect();
    assert_eq!(lines.len(), 2, "{sidecar}");
    assert!(lines[0].contains("{oops"), "{sidecar}");
    assert!(lines[1].contains("not json"), "{sidecar}");
}

#[test]
fn contradictory_error_flags_are_usage_errors() {
    for args in [
        vec!["infer", "-", "--max-errors", "3"],
        vec!["infer", "-", "--on-error", "quarantine"],
        vec![
            "infer",
            "-",
            "--on-error",
            "skip",
            "--quarantine",
            "q.ndjson",
        ],
        vec!["infer", "-", "--on-error", "nonsense"],
        vec![
            "infer",
            "-",
            "--on-error",
            "skip",
            "--profile-json",
            "p.json",
        ],
    ] {
        let out = typefuse(&args, Some("{}\n"));
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
    }
}

#[test]
fn max_depth_guards_recursion() {
    let deep = "{\"a\":{\"b\":{\"c\":{\"d\":1}}}}\n";
    let out = typefuse(&["infer", "-", "--max-depth", "2"], Some(deep));
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("recursion limit"), "{}", stderr(&out));

    let out = typefuse(&["infer", "-", "--max-depth", "16"], Some(deep));
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // stats/check accept the same guard.
    let out = typefuse(&["stats", "-", "--max-depth", "2"], Some(deep));
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
}

#[test]
fn max_line_bytes_degrades_per_policy() {
    let data = "{\"a\":1}\n{\"padding\":\"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\"}\n{\"a\":2}\n";
    let out = typefuse(&["infer", "-", "--max-line-bytes", "32"], Some(data));
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("line-size guard"), "{}", stderr(&out));

    let out = typefuse(
        &[
            "infer",
            "-",
            "--format",
            "text",
            "--max-line-bytes",
            "32",
            "--on-error",
            "skip",
        ],
        Some(data),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let clean = typefuse(
        &["infer", "-", "--format", "text"],
        Some("{\"a\":1}\n{\"a\":2}\n"),
    );
    assert_eq!(stdout(&out), stdout(&clean));
}

#[test]
fn io_errors_exit_4() {
    let out = typefuse(&["infer", "/nonexistent/typefuse-input.ndjson"], None);
    // `open` failures keep their "cannot open" message but an unreadable
    // *stream* maps to 4; opening is a runtime error today. Exercise the
    // streaming split reader, which maps to Error::Io.
    assert!(!out.status.success());
    let out = typefuse(
        &["infer", "/nonexistent/typefuse-input.ndjson", "--streaming"],
        None,
    );
    assert_eq!(out.status.code(), Some(4), "stderr: {}", stderr(&out));
}

// ---- serve: resident daemon end-to-end --------------------------------

#[test]
fn serve_folds_appends_and_answers_the_protocol() {
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    let dir = std::env::temp_dir().join("typefuse-cli-test-serve");
    std::fs::create_dir_all(&dir).unwrap();
    let pid = std::process::id();
    let data = dir.join(format!("events-{pid}.ndjson"));
    let metrics = dir.join(format!("metrics-{pid}.json"));
    std::fs::write(&data, "{\"id\":1,\"tags\":[\"a\"]}\n").unwrap();

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_typefuse"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--watch",
            &format!("events={}", data.display()),
            "--poll-ms",
            "5",
            "--metrics-json",
            metrics.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");

    // The first stdout line is the `listening` envelope with the bound
    // address (essential with port 0).
    let mut daemon_out = BufReader::new(daemon.stdout.take().unwrap());
    let mut line = String::new();
    daemon_out.read_line(&mut line).unwrap();
    let listening =
        typefuse_json::Envelope::expect_kind(&line, "listening").expect("listening envelope");
    let addr = typefuse_json::parse_value(&line)
        .unwrap()
        .pointer("/payload/addr")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert_eq!(listening.schema_version, 1);

    let request = |payload: &str| -> String {
        let mut conn = TcpStream::connect(&addr).expect("connect");
        conn.write_all(payload.as_bytes()).unwrap();
        conn.write_all(b"\n").unwrap();
        let mut reply = String::new();
        BufReader::new(conn).read_line(&mut reply).unwrap();
        reply
    };

    let wait_for_records = |n: i64| -> typefuse_json::Envelope {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let reply = request("{\"op\":\"schema\",\"source\":\"events\"}");
            let envelope = typefuse_json::Envelope::expect_kind(&reply, "schema").expect("schema");
            if envelope.payload.pointer("/records").unwrap().as_i64() == Some(n) {
                return envelope;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "fold timed out at {n}"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    };

    // Wait for the pre-existing record to fold (and publish v1) before
    // appending, so the append lands in its own snapshot (v2).
    wait_for_records(1);

    // Append a drifting record and wait for the daemon to fold it.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&data)
            .unwrap();
        f.write_all(b"{\"id\":2,\"name\":\"x\",\"tags\":[\"b\"]}\n")
            .unwrap();
    }
    let envelope = wait_for_records(2);
    // The served schema matches a batch run over the same file.
    let batch = typefuse(&["infer", data.to_str().unwrap(), "--format", "text"], None);
    let served = envelope
        .payload
        .pointer("/schema")
        .unwrap()
        .as_str()
        .unwrap();
    assert_eq!(served, stdout(&batch).trim(), "daemon == batch");

    // Drift between the two published snapshots mentions the new field.
    let reply = request("{\"op\":\"diff\",\"source\":\"events\",\"from\":1,\"to\":2}");
    let diff = typefuse_json::Envelope::expect_kind(&reply, "diff").expect("diff");
    assert!(reply.contains("name"), "{reply}");
    assert_eq!(diff.schema_version, 1);

    // A clean `shutdown` op stops the process with exit code 0 and the
    // run report lands as a metrics envelope.
    let reply = request("{\"op\":\"shutdown\"}");
    typefuse_json::Envelope::expect_kind(&reply, "ok").expect("shutdown ack");
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit: {status:?}");
    let report = std::fs::read_to_string(&metrics).expect("metrics written");
    typefuse_json::Envelope::expect_kind(&report, "metrics").expect("metrics envelope");
    assert!(report.contains("ingest.records"), "{report}");

    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_file(&metrics);
}

/// The crash-safety contract, end to end through the release binary:
/// SIGKILL the daemon mid-run, restart it on the same checkpoint
/// directory, and the served schema is byte-identical to a batch
/// `typefuse infer` over the whole file — with the checkpointed prefix
/// never re-read (the per-source records counter starts at zero each
/// process, so it counts only post-restart folds).
#[test]
fn serve_checkpoint_survives_sigkill_and_resumes_without_rereading() {
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;
    use std::process::Child;

    fn spawn_daemon(data: &std::path::Path, ckpt: &std::path::Path) -> (Child, String) {
        let mut daemon = Command::new(env!("CARGO_BIN_EXE_typefuse"))
            .args([
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--watch",
                &format!("events={}", data.display()),
                "--poll-ms",
                "5",
                "--checkpoint-dir",
                ckpt.to_str().unwrap(),
                "--checkpoint-interval-ms",
                "25",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let mut daemon_out = BufReader::new(daemon.stdout.take().unwrap());
        let mut line = String::new();
        daemon_out.read_line(&mut line).unwrap();
        typefuse_json::Envelope::expect_kind(&line, "listening").expect("listening envelope");
        let addr = typefuse_json::parse_value(&line)
            .unwrap()
            .pointer("/payload/addr")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        (daemon, addr)
    }

    fn request(addr: &str, payload: &str) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(payload.as_bytes()).unwrap();
        conn.write_all(b"\n").unwrap();
        let mut reply = String::new();
        BufReader::new(conn).read_line(&mut reply).unwrap();
        reply
    }

    /// One series from a `metrics` snapshot, whichever section holds it.
    fn series(addr: &str, key: &str) -> Option<i64> {
        let reply = request(addr, "{\"op\":\"metrics\"}");
        let env = typefuse_json::Envelope::expect_kind(&reply, "telemetry").ok()?;
        for section in ["counters", "gauges"] {
            if let Some(v) = env.payload.get(section).and_then(|s| s.get(key)) {
                return v.as_i64();
            }
        }
        None
    }

    fn wait_series(addr: &str, key: &str, want: i64) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            if series(addr, key) == Some(want) {
                return;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for {key} == {want}"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    let dir = std::env::temp_dir().join("typefuse-cli-test-ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let pid = std::process::id();
    let data = dir.join(format!("events-kill-{pid}.ndjson"));
    let ckpt = dir.join(format!("ckpt-{pid}"));
    let _ = std::fs::remove_dir_all(&ckpt);
    std::fs::write(
        &data,
        "{\"id\":1}\n{\"id\":2,\"tags\":[\"a\"]}\n{\"id\":3,\"name\":\"x\"}\n",
    )
    .unwrap();

    let records = "typefuse_source_records{source=\"events\"}";
    let ckpt_lines = "typefuse_source_checkpoint_lines{source=\"events\"}";

    // First life: fold all three records and wait until a durable
    // checkpoint covers them, then SIGKILL — no shutdown hook runs.
    let (mut daemon, addr) = spawn_daemon(&data, &ckpt);
    wait_series(&addr, records, 3);
    wait_series(&addr, ckpt_lines, 3);
    daemon.kill().expect("SIGKILL");
    daemon.wait().expect("killed daemon reaped");

    // The file keeps growing while the daemon is down.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&data)
            .unwrap();
        f.write_all(b"{\"id\":4,\"name\":\"y\",\"extra\":true}\n{\"id\":5}\n")
            .unwrap();
    }

    // Second life: resume from the checkpoint. Only the two new
    // records are read — the counter is per-process, so 2 (not 5)
    // proves the checkpointed prefix was never re-ingested.
    let (mut daemon, addr) = spawn_daemon(&data, &ckpt);
    wait_series(&addr, records, 2);

    let reply = request(&addr, "{\"op\":\"schema\",\"source\":\"events\"}");
    let envelope = typefuse_json::Envelope::expect_kind(&reply, "schema").expect("schema");
    assert_eq!(
        envelope
            .payload
            .pointer("/records")
            .and_then(|v| v.as_i64()),
        Some(5),
        "restored 3 + appended 2: {reply}"
    );
    let served = envelope
        .payload
        .pointer("/schema")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let batch = typefuse(&["infer", data.to_str().unwrap(), "--format", "text"], None);
    assert_eq!(
        served,
        stdout(&batch).trim(),
        "post-crash schema == uninterrupted batch run"
    );

    let reply = request(&addr, "{\"op\":\"shutdown\"}");
    typefuse_json::Envelope::expect_kind(&reply, "ok").expect("shutdown ack");
    assert!(daemon.wait().expect("daemon exits").success());

    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_dir_all(&ckpt);
}
