//! `typefuse diff` — structural drift between two datasets or schemas.

use crate::args::ArgStream;
use crate::{CliError, CliResult};
use typefuse::JobConfig;
use typefuse_types::diff::diff;
use typefuse_types::{parse_type, Type};

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let old_input = args
        .next_positional()
        .ok_or_else(|| CliError::usage("diff requires OLD and NEW inputs"))?;
    let new_input = args
        .next_positional()
        .ok_or_else(|| CliError::usage("diff requires OLD and NEW inputs"))?;
    let as_schemas = args.flag("--schemas");
    args.finish()?;

    let (old, new) = if as_schemas {
        (load_schema(&old_input)?, load_schema(&new_input)?)
    } else {
        (infer_schema(&old_input)?, infer_schema(&new_input)?)
    };

    let changes = diff(&old, &new);
    if changes.is_empty() {
        println!("no structural changes");
        return Ok(());
    }
    for change in &changes {
        println!("{change}");
    }
    println!("\n{} change(s)", changes.len());
    // Non-zero exit so CI pipelines can gate on drift.
    Err(CliError::runtime(format!(
        "{} structural changes detected",
        changes.len()
    )))
}

fn load_schema(path: &str) -> Result<Type, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    parse_type(text.trim()).map_err(|e| CliError::runtime(format!("invalid schema in {path}: {e}")))
}

fn infer_schema(input: &str) -> Result<Type, CliError> {
    let values = crate::cmd_infer::read_values(Some(input), &typefuse_obs::Recorder::disabled())?;
    Ok(JobConfig::new()
        .without_type_stats()
        .build()
        .run_values(values)
        .schema)
}
