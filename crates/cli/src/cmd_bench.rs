//! `typefuse bench` — the perf-trajectory harness: run the standard
//! workload matrix, write `BENCH_<gitsha>.json`, and gate regressions
//! with `bench compare`.

use crate::args::ArgStream;
use crate::{CliError, CliResult};
use typefuse::pipeline::{DedupMode, MapPath};
use typefuse::JobConfig;
use typefuse_bench::{compare, trajectory, BenchReport, BenchRun, ScaleConfig};
use typefuse_datagen::Profile;

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    match args.next_positional().as_deref() {
        None => run_matrix(args),
        Some("compare") => run_compare(args),
        Some(other) => Err(CliError::usage(format!(
            "unknown bench action `{other}` (expected `compare` or no action)"
        ))),
    }
}

/// Run the workload matrix and write the trajectory file.
fn run_matrix(args: &mut ArgStream) -> CliResult {
    let profiles = match args.option("--profiles")? {
        None => Profile::ALL.to_vec(),
        Some(csv) => csv
            .split(',')
            .map(|name| {
                Profile::from_name(name.trim()).ok_or_else(|| {
                    CliError::usage(format!(
                        "unknown profile `{name}` (expected github, twitter, wikidata or nytimes)"
                    ))
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let records: u64 = args.parsed_option("--records")?.unwrap_or(100_000);
    let workers: Vec<usize> = match args.option("--workers")? {
        None => {
            let all = typefuse_engine::runtime::available_workers();
            if all > 1 {
                vec![1, all]
            } else {
                vec![1]
            }
        }
        Some(csv) => parse_csv(&csv, "--workers")?,
    };
    let map_paths: Vec<MapPath> = match args.option("--map-paths")? {
        None => vec![MapPath::Values],
        Some(csv) => csv
            .split(',')
            .map(|name| crate::job_args::parse_map_path(name.trim()))
            .collect::<Result<Vec<_>, _>>()?,
    };
    let dedup_modes: Vec<bool> = match args.option("--dedup")? {
        None => vec![false, true],
        Some(csv) => csv
            .split(',')
            .map(|name| match name.trim() {
                "off" => Ok(false),
                "on" => Ok(true),
                other => Err(CliError::usage(format!(
                    "unknown dedup mode `{other}` (expected off or on)"
                ))),
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let partitions: Option<usize> = args.parsed_option("--partitions")?;
    let measure_bytes = !args.flag("--no-bytes");
    let out = args.option("--out")?;
    args.finish()?;

    let sha = git_sha();
    let out = out.unwrap_or_else(|| format!("BENCH_{sha}.json"));
    let mut report = BenchReport::new(&sha, unix_timestamp());

    let cells = profiles.len() * workers.len() * map_paths.len() * dedup_modes.len();
    eprintln!(
        "bench: {cells} runs ({} profiles x {} worker counts x {} map paths x {} dedup modes), {records} records each",
        profiles.len(),
        workers.len(),
        map_paths.len(),
        dedup_modes.len()
    );
    for &profile in &profiles {
        for &w in &workers {
            for &map_path in &map_paths {
                for &dedup in &dedup_modes {
                    // Each matrix cell is described by the same shared
                    // JobConfig the pipeline and daemon consume.
                    let job = JobConfig::new()
                        .workers(w)
                        .partitions(partitions.unwrap_or((w * 4).max(1)))
                        .map_path(map_path)
                        .dedup(if dedup { DedupMode::On } else { DedupMode::Off });
                    let mut config = ScaleConfig::new(profile, records).with_job_config(&job);
                    if measure_bytes {
                        config = config.measure_bytes();
                    }
                    let before = typefuse_bench::alloc::snapshot();
                    let result = typefuse_bench::run_scale(&config);
                    let delta = typefuse_bench::alloc::snapshot().since(before);
                    let run = BenchRun::from_scale(&config, &result, delta);
                    print_live(&run);
                    report.runs.push(run);
                }
            }
        }
    }

    std::fs::write(&out, report.to_json())
        .map_err(|e| CliError::with_code(format!("cannot write {out}: {e}"), 4))?;
    eprintln!("wrote {} runs to {out}", report.runs.len());
    Ok(())
}

/// One line per completed run — the live worker-utilization report.
fn print_live(run: &BenchRun) {
    let u = &run.utilization;
    let mut line = format!("  {:<44} {:>10.0} rec/s", run.key(), run.records_per_sec);
    if run.mb_per_sec > 0.0 {
        line.push_str(&format!("  {:>6.1} MB/s", run.mb_per_sec));
    }
    line.push_str(&format!(
        "  util {:>3.0}% ({}/{} busy)",
        u.utilization() * 100.0,
        u.busy_workers(),
        u.workers.len()
    ));
    if run.alloc_count > 0 {
        line.push_str(&format!("  {} allocs", run.alloc_count));
    }
    eprintln!("{line}");
}

/// Diff a current trajectory against a baseline; exit 6 on regression.
fn run_compare(args: &mut ArgStream) -> CliResult {
    let baseline_path = args
        .option("--baseline")?
        .ok_or_else(|| CliError::usage("bench compare needs `--baseline FILE`"))?;
    let current_path = args
        .option("--current")?
        .ok_or_else(|| CliError::usage("bench compare needs `--current FILE`"))?;
    let tolerance: f64 = args.parsed_option("--tolerance")?.unwrap_or(10.0);
    args.finish()?;

    let baseline = read_report(&baseline_path)?;
    let current = read_report(&current_path)?;
    let diff = compare(&current, &baseline, tolerance);
    print!("{}", diff.to_text());
    println!(
        "baseline {} ({}) vs current {} ({})",
        baseline.git_sha, baseline_path, current.git_sha, current_path
    );
    if diff.has_regressions() {
        Err(CliError::with_code(
            format!(
                "{} run(s) regressed more than {tolerance}% below the baseline",
                diff.regressions().count()
            ),
            6,
        ))
    } else {
        Ok(())
    }
}

fn read_report(path: &str) -> Result<BenchReport, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::with_code(format!("cannot read {path}: {e}"), 4))?;
    trajectory::BenchReport::from_json(&text).map_err(|e| CliError::runtime(format!("{path}: {e}")))
}

fn parse_csv(csv: &str, option: &str) -> Result<Vec<usize>, CliError> {
    csv.split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .map_err(|e| CliError::usage(format!("invalid value {part:?} in `{option}`: {e}")))
        })
        .collect()
}

/// Short git revision of the working tree, or `unknown` outside a
/// checkout (or without git on PATH).
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Seconds since the Unix epoch, as a string (no date dependency).
fn unix_timestamp() -> String {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs().to_string())
        .unwrap_or_default()
}
