//! `typefuse registry` — versioned, compatibility-gated schema storage.

use crate::args::ArgStream;
use crate::{CliError, CliResult};
use typefuse::JobConfig;
use typefuse_registry::{CompatMode, Registry};
use typefuse_types::parse_type;

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let action = args.next_positional().ok_or_else(|| {
        CliError::usage("registry needs an action: publish, latest, history, diff or names")
    })?;
    let log = args
        .option("--log")?
        .unwrap_or_else(|| "typefuse.registry.ndjson".to_string());

    match action.as_str() {
        "publish" => {
            let subject = args
                .next_positional()
                .ok_or_else(|| CliError::usage("publish needs a subject name"))?;
            let input = args.next_positional();
            let schema_path = args.option("--schema")?;
            let compat = args
                .option("--compat")?
                .unwrap_or_else(|| "backward".to_string());
            args.finish()?;
            let mode = CompatMode::from_name(&compat).ok_or_else(|| {
                CliError::usage(format!(
                    "unknown compat mode `{compat}` (expected backward, forward, full or none)"
                ))
            })?;

            // Schema from a file, or inferred from the data input.
            let schema = match schema_path {
                Some(path) => {
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
                    parse_type(text.trim())
                        .map_err(|e| CliError::runtime(format!("invalid schema: {e}")))?
                }
                None => {
                    let values = crate::cmd_infer::read_values(
                        input.as_deref(),
                        &typefuse_obs::Recorder::disabled(),
                    )?;
                    JobConfig::new()
                        .without_type_stats()
                        .build()
                        .run_values(values)
                        .schema
                }
            };

            let mut reg = open(&log)?;
            match reg.publish(&subject, &schema, mode) {
                Ok(outcome) if outcome.unchanged => {
                    println!("{subject}: unchanged (version {})", outcome.version);
                }
                Ok(outcome) => println!("{subject}: published version {}", outcome.version),
                Err(typefuse_registry::RegistryError::Incompatible {
                    mode,
                    against_version,
                    changes,
                }) => {
                    eprintln!("{subject}: not {mode}-compatible with version {against_version}:");
                    for change in &changes {
                        eprintln!("  {change}");
                    }
                    return Err(CliError::runtime("publish rejected".to_string()));
                }
                Err(e) => return Err(CliError::runtime(e.to_string())),
            }
            Ok(())
        }
        "latest" => {
            let subject = args
                .next_positional()
                .ok_or_else(|| CliError::usage("latest needs a subject name"))?;
            args.finish()?;
            let reg = open(&log)?;
            let entry = reg
                .latest(&subject)
                .ok_or_else(|| CliError::runtime(format!("unknown subject {subject:?}")))?;
            eprintln!("# {} version {}", entry.name, entry.version);
            println!("{}", entry.schema);
            Ok(())
        }
        "history" => {
            let subject = args
                .next_positional()
                .ok_or_else(|| CliError::usage("history needs a subject name"))?;
            args.finish()?;
            let reg = open(&log)?;
            for entry in reg
                .history(&subject)
                .map_err(|e| CliError::runtime(e.to_string()))?
            {
                println!(
                    "v{}  size {}  {}",
                    entry.version,
                    entry.schema.size(),
                    entry.schema
                );
            }
            Ok(())
        }
        "diff" => {
            let subject = args
                .next_positional()
                .ok_or_else(|| CliError::usage("diff needs a subject name"))?;
            let from: u64 = args
                .next_positional()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| CliError::usage("diff needs FROM and TO versions"))?;
            let to: u64 = args
                .next_positional()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| CliError::usage("diff needs FROM and TO versions"))?;
            args.finish()?;
            let reg = open(&log)?;
            let changes = reg
                .diff(&subject, from, to)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            if changes.is_empty() {
                println!("no structural changes");
            }
            for change in changes {
                println!("{change}");
            }
            Ok(())
        }
        "names" => {
            args.finish()?;
            let reg = open(&log)?;
            for name in reg.names() {
                println!("{name}");
            }
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown registry action `{other}`"
        ))),
    }
}

fn open(log: &str) -> Result<Registry, CliError> {
    Registry::open(log).map_err(|e| CliError::runtime(e.to_string()))
}
