//! `typefuse generate` — emit a synthetic dataset as NDJSON.

use crate::args::ArgStream;
use crate::{CliError, CliResult};
use std::io::{self, BufWriter, Write};
use typefuse_datagen::{DatasetProfile, Profile};

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let profile_name = args
        .option("--profile")?
        .ok_or_else(|| CliError::usage("generate requires --profile"))?;
    let records: usize = args.parsed_option("--records")?.unwrap_or(1000);
    let seed: u64 = args.parsed_option("--seed")?.unwrap_or(42);
    args.finish()?;

    let profile = Profile::from_name(&profile_name).ok_or_else(|| {
        CliError::usage(format!(
            "unknown profile `{profile_name}` (expected github, twitter, wikidata or nytimes)"
        ))
    })?;

    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for value in profile.generate(seed, records) {
        writeln!(out, "{value}").map_err(|e| CliError::runtime(format!("write failed: {e}")))?;
    }
    out.flush()
        .map_err(|e| CliError::runtime(format!("write failed: {e}")))?;
    Ok(())
}
