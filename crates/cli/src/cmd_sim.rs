//! `typefuse sim` — the cluster-placement experiment from Section 6.2.

use crate::args::ArgStream;
use crate::{CliError, CliResult};
use typefuse_engine::sim::{simulate, ClusterSpec, LocalityPolicy, Placement, Workload};

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let placement_name = args
        .option("--placement")?
        .unwrap_or_else(|| "single".to_string());
    let blocks: usize = args.parsed_option("--blocks")?.unwrap_or(176);
    let block_mb: u64 = args.parsed_option("--block-mb")?.unwrap_or(128);
    let records_per_block: u64 = args.parsed_option("--records-per-block")?.unwrap_or(7000);
    let relaxed = args.flag("--relaxed");
    let report_json = args.option("--report-json")?;
    args.finish()?;

    let placement = match placement_name.as_str() {
        "single" => Placement::SingleNode {
            node: 0,
            replication: 2,
        },
        "spread" => Placement::RoundRobin { replication: 2 },
        other => {
            return Err(CliError::usage(format!(
                "unknown placement `{other}` (expected single or spread)"
            )))
        }
    };

    let spec = ClusterSpec {
        locality: if relaxed {
            LocalityPolicy::Relaxed
        } else {
            LocalityPolicy::Strict
        },
        ..ClusterSpec::default()
    };
    let payloads = vec![(block_mb * 1_000_000, records_per_block); blocks];
    let workload = Workload {
        blocks: placement.place(&payloads, spec.nodes),
        cpu_secs_per_record: 25e-6,
    };
    let report = simulate(&spec, &workload);

    println!(
        "cluster      {} nodes x {} cores, placement {placement_name}, locality {:?}",
        spec.nodes, spec.cores_per_node, spec.locality
    );
    println!(
        "workload     {} blocks x {} MB, {} records/block",
        blocks, block_mb, records_per_block
    );
    println!(
        "makespan     {:.1} s ({:.2} min)",
        report.makespan,
        report.makespan / 60.0
    );
    println!(
        "locality     {} local / {} remote tasks",
        report.local_tasks(),
        report.remote_tasks()
    );
    println!(
        "busy nodes   {} of {} ({} idle)",
        report.busy_nodes(),
        spec.nodes,
        report.idle_nodes()
    );
    println!("utilization  {:.1}%", report.utilization() * 100.0);
    for (node, busy) in report.node_busy.iter().enumerate() {
        let bar_len = if report.makespan > 0.0 {
            ((busy / report.makespan) * 40.0).round() as usize
        } else {
            0
        };
        println!(
            "  node {node}  {:>8.1} s  {}",
            busy,
            "#".repeat(bar_len.min(60))
        );
    }
    // The machine-readable counterpart: the same per-worker utilization
    // JSON shape the real runtime emits in BENCH_*.json, so the
    // simulated Table 7/8 story diffs directly against measured runs.
    if let Some(path) = report_json {
        crate::job_args::write_envelope(
            &path,
            "utilization",
            &report.utilization_report().to_json(),
        )?;
        eprintln!("wrote utilization report to {path}");
    }
    Ok(())
}
