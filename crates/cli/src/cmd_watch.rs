//! `typefuse watch` — live per-source telemetry tables from a running
//! daemon.
//!
//! Connects to a `typefuse serve` protocol address, subscribes with
//! `{"op":"watch","interval_ms":N}` and renders each streamed
//! `telemetry` envelope as a per-source table (records, records/s, tail
//! lag, skipped/quarantined, distinct shapes, published version) plus
//! the daemon-level series. `--raw` prints the envelopes verbatim
//! instead, one JSON line per snapshot — the form scripts want.

use crate::args::ArgStream;
use crate::{CliError, CliResult};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use typefuse_json::{Envelope, Value};

/// One source's row, assembled from `typefuse_source_*{source="…"}`
/// series.
#[derive(Default)]
struct SourceRow {
    records: u64,
    rate: u64,
    lag: u64,
    offset: u64,
    skipped: u64,
    quarantined: u64,
    shapes: u64,
    shape_hits: u64,
    shape_misses: u64,
    version: u64,
    breaker: u64,
    restarts: u64,
    ckpt_bytes: Option<u64>,
    ckpt_age_ms: Option<u64>,
}

impl SourceRow {
    /// Shape-cache hit rate as a whole percentage, `"-"` off the shape
    /// route (both counters zero).
    fn hit_rate(&self) -> String {
        let total = self.shape_hits + self.shape_misses;
        match (self.shape_hits * 100).checked_div(total) {
            Some(pct) => format!("{pct}%"),
            None => "-".to_string(),
        }
    }

    /// The supervisor's circuit-breaker state for this source.
    fn breaker_state(&self) -> &'static str {
        match self.breaker {
            0 => "ok",
            1 => "backoff",
            _ => "tripped",
        }
    }

    /// `"-"` until the first checkpoint is written (or when
    /// checkpointing is off).
    fn opt(value: Option<u64>) -> String {
        value.map_or_else(|| "-".to_string(), |v| v.to_string())
    }
}

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let addr = args
        .next_positional()
        .ok_or_else(|| CliError::usage("watch needs a daemon address: typefuse watch ADDR"))?;
    let interval_ms: u64 = args.parsed_option("--interval-ms")?.unwrap_or(1000);
    let count: Option<u64> = args.parsed_option("--count")?;
    let raw = args.flag("--raw");
    args.finish()?;
    if interval_ms == 0 {
        return Err(CliError::usage("--interval-ms must be positive"));
    }

    let stream = TcpStream::connect(&addr)
        .map_err(|e| CliError::runtime(format!("cannot connect to {addr}: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| CliError::runtime(format!("cannot clone connection: {e}")))?;
    writeln!(writer, "{{\"op\":\"watch\",\"interval_ms\":{interval_ms}}}")
        .map_err(|e| CliError::runtime(format!("cannot subscribe: {e}")))?;

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut seen = 0u64;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // daemon stopped
            Ok(_) => {}
            Err(e) => return Err(CliError::runtime(format!("stream read failed: {e}"))),
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if raw {
            println!("{trimmed}");
        } else {
            let envelope = Envelope::expect_kind(trimmed, "telemetry")
                .map_err(|e| CliError::runtime(format!("unexpected response: {e}")))?;
            print!("{}", render_snapshot(&envelope.payload));
        }
        std::io::stdout().flush().ok();
        seen += 1;
        if count.is_some_and(|n| seen >= n) {
            break;
        }
    }
    Ok(())
}

/// Render one telemetry snapshot payload as a header plus a per-source
/// table.
fn render_snapshot(payload: &Value) -> String {
    let mut rows: BTreeMap<String, SourceRow> = BTreeMap::new();
    let mut daemon: BTreeMap<String, u64> = BTreeMap::new();
    for section in ["counters", "gauges", "approx"] {
        let Some(map) = payload.get(section).and_then(Value::as_object) else {
            continue;
        };
        for (key, value) in map.iter() {
            let Some(value) = value.as_i64().filter(|v| *v >= 0).map(|v| v as u64) else {
                continue;
            };
            match split_source_series(key) {
                Some((metric, source)) => {
                    let row = rows.entry(source).or_default();
                    match metric {
                        "typefuse_source_records" => row.records = value,
                        "typefuse_source_records_per_sec" => row.rate = value,
                        "typefuse_source_lag_bytes" => row.lag = value,
                        "typefuse_source_offset_bytes" => row.offset = value,
                        "typefuse_source_skipped" => row.skipped = value,
                        "typefuse_source_quarantined" => row.quarantined = value,
                        "typefuse_source_distinct_shapes" => row.shapes = value,
                        "typefuse_source_shape_hits" => row.shape_hits = value,
                        "typefuse_source_shape_misses" => row.shape_misses = value,
                        "typefuse_source_version" => row.version = value,
                        "typefuse_source_breaker" => row.breaker = value,
                        "typefuse_source_restarts" => row.restarts = value,
                        "typefuse_source_checkpoint_bytes" => row.ckpt_bytes = Some(value),
                        "typefuse_source_checkpoint_age_ms" => row.ckpt_age_ms = Some(value),
                        _ => {}
                    }
                }
                None => {
                    daemon.insert(key.to_string(), value);
                }
            }
        }
    }

    let mut out = String::new();
    let version = payload.get("version").and_then(Value::as_i64).unwrap_or(0);
    out.push_str(&format!(
        "snapshot #{version}  uptime {}s  sessions {}  requests {}  restarts {}\n",
        daemon.get("typefuse_uptime_ms").copied().unwrap_or(0) / 1000,
        daemon.get("typefuse_sessions_total").copied().unwrap_or(0),
        daemon.get("typefuse_requests_total").copied().unwrap_or(0),
        daemon
            .get("typefuse_supervisor_restarts_total")
            .copied()
            .unwrap_or(0),
    ));
    out.push_str(&format!(
        "{:<20} {:>10} {:>8} {:>12} {:>8} {:>12} {:>8} {:>6} {:>8} {:>8} {:>8} {:>9} {:>11}\n",
        "SOURCE",
        "RECORDS",
        "REC/S",
        "LAG(B)",
        "SKIPPED",
        "QUARANTINED",
        "SHAPES",
        "HIT%",
        "VERSION",
        "BREAKER",
        "RESTARTS",
        "CKPT(B)",
        "CKPT-AGE(MS)"
    ));
    for (source, row) in &rows {
        out.push_str(&format!(
            "{:<20} {:>10} {:>8} {:>12} {:>8} {:>12} {:>8} {:>6} {:>8} {:>8} {:>8} {:>9} {:>11}\n",
            source,
            row.records,
            row.rate,
            row.lag,
            row.skipped,
            row.quarantined,
            row.shapes,
            row.hit_rate(),
            row.version,
            row.breaker_state(),
            row.restarts,
            SourceRow::opt(row.ckpt_bytes),
            SourceRow::opt(row.ckpt_age_ms)
        ));
    }
    out.push('\n');
    out
}

/// Split `metric{source="name"}` into `(metric, name)`; `None` for
/// series without a `source` label. Label values were escaped by
/// `series_key` (`\\`, `\"`, `\n`), undone here.
fn split_source_series(key: &str) -> Option<(&str, String)> {
    let (metric, rest) = key.split_once('{')?;
    let rest = rest.strip_suffix("\"}")?;
    let escaped = rest.strip_prefix("source=\"")?;
    let mut source = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            source.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => source.push('\n'),
            Some(other) => source.push(other),
            None => break,
        }
    }
    Some((metric, source))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_source_series_keys() {
        assert_eq!(
            split_source_series("typefuse_source_records{source=\"events\"}"),
            Some(("typefuse_source_records", "events".to_string()))
        );
        assert_eq!(
            split_source_series("a{source=\"q\\\"b\\\\c\\nd\"}"),
            Some(("a", "q\"b\\c\nd".to_string()))
        );
        assert_eq!(split_source_series("typefuse_uptime_ms"), None);
        assert_eq!(split_source_series("m{level=\"warn\"}"), None);
    }

    #[test]
    fn renders_a_table_from_a_snapshot_payload() {
        let payload = typefuse_json::parse_value(
            r#"{"version":3,
                "counters":{"typefuse_source_records{source=\"events\"}":42,
                            "typefuse_requests_total":7},
                "gauges":{"typefuse_source_lag_bytes{source=\"events\"}":128,
                          "typefuse_source_breaker{source=\"events\"}":1,
                          "typefuse_source_checkpoint_bytes{source=\"events\"}":77,
                          "typefuse_source_version{source=\"events\"}":2},
                "approx":{"typefuse_uptime_ms":5500,
                          "typefuse_source_records_per_sec{source=\"events\"}":6}}"#,
        )
        .unwrap();
        let table = render_snapshot(&payload);
        assert!(table.starts_with("snapshot #3  uptime 5s"), "{table}");
        assert!(table.contains("requests 7"), "{table}");
        let row = table.lines().find(|l| l.starts_with("events")).unwrap();
        assert!(row.contains("42"), "{row}");
        assert!(row.contains("128"), "{row}");
        assert!(row.contains('6'), "{row}");
        assert!(row.contains("backoff"), "{row}");
        assert!(row.contains("77"), "{row}");
        // No checkpoint-age series in the payload → placeholder.
        assert!(row.trim_end().ends_with('-'), "{row}");
    }
}
