//! `typefuse check` — validate NDJSON records against a schema.
//!
//! The use case from the paper's introduction: once a schema has been
//! inferred, downstream producers can be checked against it, catching
//! structural drift (new fields, type changes) before it breaks queries.

use crate::args::ArgStream;
use crate::{CliError, CliResult};
use typefuse_obs::Recorder;
use typefuse_types::parse_type;

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let input = args.next_positional();
    let schema_path = args
        .option("--schema")?
        .ok_or_else(|| CliError::usage("check requires --schema FILE"))?;
    let max_errors: usize = args.parsed_option("--max-errors")?.unwrap_or(10);
    let max_depth: Option<usize> = args.parsed_option("--max-depth")?;
    let metrics_json = args.option("--metrics-json")?;
    args.finish()?;

    let recorder = if metrics_json.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };

    let schema_text = std::fs::read_to_string(&schema_path)
        .map_err(|e| CliError::runtime(format!("cannot read {schema_path}: {e}")))?;
    let schema = parse_type(schema_text.trim())
        .map_err(|e| CliError::runtime(format!("invalid schema: {e}")))?;

    let mut parser = typefuse_json::ParserOptions::default();
    if let Some(depth) = max_depth {
        parser.max_depth = depth;
    }
    let values = {
        let _span = recorder.span("check.read");
        let (values, _) = crate::cmd_infer::read_values_with(
            input.as_deref(),
            &parser,
            &typefuse::ErrorPolicy::FailFast,
            None,
            &recorder,
        )?;
        values
    };
    let mut failures = 0usize;
    {
        let _span = recorder.span("check.admit");
        for (i, v) in values.iter().enumerate() {
            if !schema.admits(v) {
                failures += 1;
                if failures <= max_errors {
                    eprintln!("record {}: not admitted by the schema", i + 1);
                }
            }
        }
    }
    if failures > max_errors {
        eprintln!("… and {} more", failures - max_errors);
    }
    println!(
        "{} of {} records conform",
        values.len() - failures,
        values.len()
    );

    if let Some(path) = metrics_json {
        recorder.add("records", values.len() as u64);
        recorder.add("check.failures", failures as u64);
        recorder.add("check.conforming", (values.len() - failures) as u64);
        std::fs::write(&path, recorder.snapshot().to_json())
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
    }

    if failures > 0 {
        return Err(CliError::runtime(format!(
            "{failures} records do not conform"
        )));
    }
    Ok(())
}
