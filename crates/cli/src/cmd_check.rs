//! `typefuse check` — validate NDJSON records against a schema.
//!
//! The use case from the paper's introduction: once a schema has been
//! inferred, downstream producers can be checked against it, catching
//! structural drift (new fields, type changes) before it breaks queries.

use crate::args::ArgStream;
use crate::{CliError, CliResult};
use typefuse_types::parse_type;

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let input = args.next_positional();
    let schema_path = args
        .option("--schema")?
        .ok_or_else(|| CliError::usage("check requires --schema FILE"))?;
    let max_errors: usize = args.parsed_option("--max-errors")?.unwrap_or(10);
    args.finish()?;

    let schema_text = std::fs::read_to_string(&schema_path)
        .map_err(|e| CliError::runtime(format!("cannot read {schema_path}: {e}")))?;
    let schema = parse_type(schema_text.trim())
        .map_err(|e| CliError::runtime(format!("invalid schema: {e}")))?;

    let values =
        crate::cmd_infer::read_values(input.as_deref(), &typefuse_obs::Recorder::disabled())?;
    let mut failures = 0usize;
    for (i, v) in values.iter().enumerate() {
        if !schema.admits(v) {
            failures += 1;
            if failures <= max_errors {
                eprintln!("record {}: not admitted by the schema", i + 1);
            }
        }
    }
    if failures > max_errors {
        eprintln!("… and {} more", failures - max_errors);
    }
    println!(
        "{} of {} records conform",
        values.len() - failures,
        values.len()
    );
    if failures > 0 {
        return Err(CliError::runtime(format!(
            "{failures} records do not conform"
        )));
    }
    Ok(())
}
