//! `typefuse check` — validate NDJSON records against a schema.
//!
//! The use case from the paper's introduction: once a schema has been
//! inferred, downstream producers can be checked against it, catching
//! structural drift (new fields, type changes) before it breaks queries.

use crate::args::ArgStream;
use crate::{CliError, CliResult};
use typefuse_obs::Recorder;
use typefuse_types::parse_type;

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let input = args.next_positional();
    let schema_path = args
        .option("--schema")?
        .ok_or_else(|| CliError::usage("check requires --schema FILE"))?;
    let max_failures: usize = args.parsed_option("--max-failures")?.unwrap_or(10);
    let metrics_json = args.option("--metrics-json")?;
    let flags = crate::job_args::JobFlags::parse_ingest(args)?;
    args.finish()?;

    let recorder = if metrics_json.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };

    let schema_text = std::fs::read_to_string(&schema_path)
        .map_err(|e| CliError::runtime(format!("cannot read {schema_path}: {e}")))?;
    let schema = parse_type(schema_text.trim())
        .map_err(|e| CliError::runtime(format!("invalid schema: {e}")))?;

    let parser = flags.parser_options();
    let values = {
        let _span = recorder.span("check.read");
        let (values, errors) = crate::cmd_infer::read_values_with(
            input.as_deref(),
            &parser,
            &flags.policy,
            flags.max_line_bytes,
            &recorder,
        )?;
        if !errors.is_empty() {
            eprintln!("skipped {} bad record(s)", errors.skipped());
        }
        values
    };
    let mut failures = 0usize;
    {
        let _span = recorder.span("check.admit");
        for (i, v) in values.iter().enumerate() {
            if !schema.admits(v) {
                failures += 1;
                if failures <= max_failures {
                    eprintln!("record {}: not admitted by the schema", i + 1);
                }
            }
        }
    }
    if failures > max_failures {
        eprintln!("… and {} more", failures - max_failures);
    }
    println!(
        "{} of {} records conform",
        values.len() - failures,
        values.len()
    );

    if let Some(path) = metrics_json {
        recorder.add("records", values.len() as u64);
        recorder.add("check.failures", failures as u64);
        recorder.add("check.conforming", (values.len() - failures) as u64);
        crate::job_args::write_envelope(&path, "metrics", &recorder.snapshot().to_json())?;
    }

    if failures > 0 {
        return Err(CliError::runtime(format!(
            "{failures} records do not conform"
        )));
    }
    Ok(())
}
