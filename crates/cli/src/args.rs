//! A small argument parser: positionals, `--flag` booleans and
//! `--option value` pairs, consumed in one pass.

use crate::CliError;
use std::collections::VecDeque;

/// The remaining command-line arguments.
pub(crate) struct ArgStream {
    args: VecDeque<String>,
}

impl ArgStream {
    /// Capture `std::env::args` (program name dropped).
    pub(crate) fn from_env() -> Self {
        ArgStream {
            args: std::env::args().skip(1).collect(),
        }
    }

    /// Build from explicit arguments (tests).
    #[cfg(test)]
    pub(crate) fn from_vec(args: &[&str]) -> Self {
        ArgStream {
            args: args.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Take the next positional (non-`--`) argument, if the stream front
    /// holds one.
    pub(crate) fn next_positional(&mut self) -> Option<String> {
        match self.args.front() {
            Some(front) if !front.starts_with("--") => self.args.pop_front(),
            _ => None,
        }
    }

    /// Consume the boolean flag `name` anywhere in the stream. Returns
    /// whether it was present.
    pub(crate) fn flag(&mut self, name: &str) -> bool {
        if let Some(pos) = self.args.iter().position(|a| a == name) {
            self.args.remove(pos);
            true
        } else {
            false
        }
    }

    /// Consume `name <value>` anywhere in the stream.
    pub(crate) fn option(&mut self, name: &str) -> Result<Option<String>, CliError> {
        if let Some(pos) = self.args.iter().position(|a| a == name) {
            self.args.remove(pos);
            match self.args.remove(pos) {
                Some(v) if !v.starts_with("--") => Ok(Some(v)),
                _ => Err(CliError::usage(format!("option `{name}` needs a value"))),
            }
        } else {
            Ok(None)
        }
    }

    /// Consume every `name <value>` occurrence, in order (repeatable
    /// options like `serve --watch NAME=PATH`).
    pub(crate) fn multi_option(&mut self, name: &str) -> Result<Vec<String>, CliError> {
        let mut values = Vec::new();
        while let Some(value) = self.option(name)? {
            values.push(value);
        }
        Ok(values)
    }

    /// Consume `name <value>` and parse it.
    pub(crate) fn parsed_option<T>(&mut self, name: &str) -> Result<Option<T>, CliError>
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Display,
    {
        match self.option(name)? {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|e| CliError::usage(format!("invalid value {raw:?} for `{name}`: {e}"))),
        }
    }

    /// Error if anything was left unconsumed.
    pub(crate) fn finish(&mut self) -> Result<(), CliError> {
        match self.args.front() {
            None => Ok(()),
            Some(extra) => Err(CliError::usage(format!("unexpected argument `{extra}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positional_then_flags() {
        let mut a = ArgStream::from_vec(&["infer", "file.ndjson", "--stats"]);
        assert_eq!(a.next_positional().as_deref(), Some("infer"));
        assert_eq!(a.next_positional().as_deref(), Some("file.ndjson"));
        assert!(a.flag("--stats"));
        assert!(!a.flag("--stats"), "flag consumed");
        a.finish().unwrap();
    }

    #[test]
    fn options_with_values() {
        let mut a = ArgStream::from_vec(&["--records", "100", "--profile", "github"]);
        assert_eq!(a.parsed_option::<usize>("--records").unwrap(), Some(100));
        assert_eq!(a.option("--profile").unwrap().as_deref(), Some("github"));
        assert_eq!(a.option("--seed").unwrap(), None);
        a.finish().unwrap();
    }

    #[test]
    fn multi_option_collects_in_order() {
        let mut a = ArgStream::from_vec(&["--watch", "a=1", "--poll-ms", "5", "--watch", "b=2"]);
        assert_eq!(a.multi_option("--watch").unwrap(), vec!["a=1", "b=2"]);
        assert_eq!(a.parsed_option::<u64>("--poll-ms").unwrap(), Some(5));
        a.finish().unwrap();
    }

    #[test]
    fn option_missing_value() {
        let mut a = ArgStream::from_vec(&["--records"]);
        assert!(a.parsed_option::<usize>("--records").is_err());
    }

    #[test]
    fn option_value_cannot_be_a_flag() {
        let mut a = ArgStream::from_vec(&["--records", "--stats"]);
        assert!(a.parsed_option::<usize>("--records").is_err());
    }

    #[test]
    fn invalid_parse() {
        let mut a = ArgStream::from_vec(&["--records", "many"]);
        assert!(a.parsed_option::<usize>("--records").is_err());
    }

    #[test]
    fn finish_rejects_leftovers() {
        let mut a = ArgStream::from_vec(&["--unknown"]);
        assert!(a.finish().is_err());
    }

    #[test]
    fn positional_stops_at_flag() {
        let mut a = ArgStream::from_vec(&["--flag", "pos"]);
        assert_eq!(a.next_positional(), None);
    }
}
