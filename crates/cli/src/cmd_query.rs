//! `typefuse query` — run a schema-checked pipeline over NDJSON data.

use crate::args::ArgStream;
use crate::{CliError, CliResult};
use typefuse::JobConfig;
use typefuse_query::Pipeline;
use typefuse_types::parse_type;

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let input = args.next_positional();
    let script_path = args
        .option("--script")?
        .ok_or_else(|| CliError::usage("query requires --script FILE"))?;
    let schema_path = args.option("--schema")?;
    let check_only = args.flag("--check-only");
    args.finish()?;

    let script = std::fs::read_to_string(&script_path)
        .map_err(|e| CliError::runtime(format!("cannot read {script_path}: {e}")))?;
    let pipeline =
        Pipeline::parse(&script).map_err(|e| CliError::runtime(format!("{script_path}: {e}")))?;

    // With --check-only and an explicit schema no data is needed at all —
    // do not touch the input (reading stdin would block).
    let values = if check_only && schema_path.is_some() {
        Vec::new()
    } else {
        crate::cmd_infer::read_values(input.as_deref(), &typefuse_obs::Recorder::disabled())?
    };

    // Schema: explicit file, or inferred from the data itself.
    let schema = match &schema_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
            parse_type(text.trim())
                .map_err(|e| CliError::runtime(format!("invalid schema: {e}")))?
        }
        None => {
            JobConfig::new()
                .without_type_stats()
                .build()
                .run_values(values.clone())
                .schema
        }
    };

    let out_schema = pipeline
        .check(&schema)
        .map_err(|e| CliError::runtime(format!("type error: {e}")))?;
    eprintln!("output schema: {out_schema}");
    if check_only {
        return Ok(());
    }

    let out = pipeline
        .eval(&values)
        .map_err(|e| CliError::runtime(format!("evaluation failed: {e}")))?;
    for row in &out {
        println!("{row}");
    }
    eprintln!("{} row(s)", out.len());
    Ok(())
}
