//! `typefuse infer` — the full pipeline over an NDJSON input.

use crate::args::ArgStream;
use crate::job_args::JobFlags;
use crate::{CliError, CliResult};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use typefuse::pipeline::{dedup_auto_sample, DedupMode, MapPath, Source};
use typefuse::splits::IngestOptions;
use typefuse::{BadRecord, ErrorPolicy, ErrorReport, IoSite, RetryPolicy};
use typefuse_engine::{Dataset, ReducePlan};
use typefuse_infer::{ArrayFusion, Counting, CountingFuser, DedupCounting, FuseConfig, Fuser};
use typefuse_json::ndjson::{read_line_bounded, trim_ascii_bytes};
use typefuse_json::{ErrorKind, NdjsonReader, ParserOptions, Position, Value};
use typefuse_obs::Recorder;
use typefuse_types::export::to_json_schema_document;

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let input = args.next_positional();
    let format = args
        .option("--format")?
        .unwrap_or_else(|| "pretty".to_string());
    let stats = args.flag("--stats");
    let counting = args.flag("--counting");
    let positional_arrays = args.flag("--positional-arrays");
    let sequential_reduce = args.flag("--sequential-reduce");
    let streaming = args.flag("--streaming");
    let maplike = args.flag("--maplike");
    let profile_json = args.option("--profile-json")?;
    let metrics_json = args.option("--metrics-json")?;
    let trace_json = args.option("--trace-json")?;
    let progress = args.flag("--progress");
    let flags = JobFlags::parse(args)?;
    args.finish()?;

    let map_path = flags.map_path;
    let dedup = flags.dedup;
    let max_depth = flags.max_depth;
    let max_line_bytes = flags.max_line_bytes;
    let policy = flags.policy.clone();
    let parser_options = flags.parser_options();

    let observing = metrics_json.is_some() || trace_json.is_some() || progress;
    let recorder = if observing {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let heartbeat = progress.then(|| Heartbeat::start(recorder.clone()));

    if counting && map_path == Some(MapPath::Events) {
        return Err(CliError::usage(
            "--counting reads record trees and needs the value path; drop --map-path events",
        ));
    }
    if profile_json.is_some() && (streaming || counting || stats) {
        return Err(CliError::usage(
            "--profile-json runs its own fused pass and is incompatible with \
             --streaming/--counting/--stats (the profile report supersedes them)",
        ));
    }
    if profile_json.is_some() && !policy.is_fail_fast() {
        return Err(CliError::usage(
            "the profiled pass is fail-fast; drop --on-error/--quarantine or --profile-json",
        ));
    }
    if profile_json.is_some() && (max_depth.is_some() || max_line_bytes.is_some()) {
        return Err(CliError::usage(
            "--max-depth/--max-line-bytes are not supported with --profile-json",
        ));
    }
    if dedup == DedupMode::On && profile_json.is_some() {
        return Err(CliError::usage(
            "--dedup on has no effect on the profiled pass; drop --profile-json or --dedup",
        ));
    }
    if dedup == DedupMode::On && streaming {
        return Err(CliError::usage(
            "--dedup on needs the partitioned reduce; drop --streaming or --dedup",
        ));
    }

    if streaming {
        if stats || counting {
            return Err(CliError::usage(
                "--streaming is incompatible with --stats/--counting",
            ));
        }
        let outcome = run_streaming(
            input.as_deref(),
            positional_arrays,
            &policy,
            &parser_options,
            max_line_bytes,
            &recorder,
        );
        if let Some(hb) = heartbeat {
            hb.finish();
        }
        let (schema, errors) = outcome?;
        print_schema(&schema, &format)?;
        report_skipped(&errors, &policy);
        // Streaming has no pipeline stages; the report is the
        // recorder's own counters, histograms, spans and trace.
        write_observability(&recorder.snapshot(), &recorder, &metrics_json, &trace_json)?;
        return Ok(());
    }

    let mut config = flags.config(recorder.clone());
    if positional_arrays {
        config = config.fuse_config(FuseConfig {
            array_fusion: ArrayFusion::PositionalWhenAligned,
        });
    }
    if sequential_reduce {
        config = config.reduce_plan(ReducePlan::Sequential);
    }
    if !stats {
        config = config.without_type_stats();
    }
    let job = config.build();

    // The profiled route replaces the plain pipeline entirely: one
    // fused Map+Reduce pass produces the schema, the per-path profile
    // report (provenance lines, kind/length/numeric statistics) and the
    // run report. Output is byte-identical for any worker/partition
    // count and either --map-path (CI diffs it).
    if let Some(profile_path) = profile_json {
        let reader = open_input(input.as_deref())?;
        let outcome = job.run_profiled(Source::ndjson(reader));
        if let Some(hb) = heartbeat {
            hb.finish();
        }
        let profiled = outcome.map_err(crate::ingest_error)?;
        if maplike {
            println!(
                "{}",
                typefuse_infer::maplike::summarize(
                    &profiled.profile.schema,
                    typefuse_infer::MapLikeConfig::default()
                )
            );
        } else {
            print_schema(&profiled.profile.schema, &format)?;
        }
        crate::job_args::write_envelope(&profile_path, "profile", &profiled.profile.to_json())?;
        write_observability(
            &profiled.run_report(&recorder),
            &recorder,
            &metrics_json,
            &trace_json,
        )?;
        return Ok(());
    }

    // Path statistics need the record trees, so `--counting` forces the
    // value route: values are read once, the counting strategy runs on
    // the engine's trait-driven reduce, and the timed pipeline reuses
    // the same dataset only when something else (type statistics, a
    // metrics report) requires it. Without `--counting` the input
    // streams straight through the job's Map route (`--map-path`,
    // events by default).
    let ingest_report;
    let (result, counted) = if counting {
        let values = {
            let _span = recorder.span("pipeline.read");
            let (values, report) = read_values_with(
                input.as_deref(),
                &parser_options,
                &policy,
                max_line_bytes,
                &recorder,
            )?;
            ingest_report = report;
            values
        };
        let dataset = Dataset::from_vec(values, job.partitions);
        // The counting reduce mirrors the pipeline's dedup routing: On
        // (or Auto over a redundant sample) rides the shape-dedup
        // strategy, which counts paths once per distinct shape weighted
        // by multiplicity; totals and rows are identical either way.
        let use_dedup = match dedup {
            DedupMode::On => true,
            DedupMode::Off => false,
            DedupMode::Auto => {
                let sample: Vec<_> = dataset
                    .iter()
                    .take(512)
                    .map(typefuse_infer::infer_type)
                    .collect();
                dedup_auto_sample(sample.iter())
            }
        };
        // Dedup counters are not flushed here: whenever they are
        // observable (--metrics-json/--trace-json/--progress) the timed
        // pipeline below also runs with the same dedup mode and reports
        // them once.
        let counted = if use_dedup {
            let fuser = DedupCounting::new(job.fuse_config);
            let (acc, _) = dataset.fuse_values(&job.runtime, job.reduce_plan, &fuser, &recorder);
            acc.unwrap_or_else(|| fuser.empty()).finish()
        } else {
            let (acc, _) = dataset.fuse_values(&job.runtime, job.reduce_plan, &Counting, &recorder);
            acc.unwrap_or_else(CountingFuser::new).finish()
        };
        let need_pipeline = stats || observing;
        (
            need_pipeline.then(|| job.run_dataset(&dataset)),
            Some(counted),
        )
    } else {
        let reader = open_input(input.as_deref())?;
        let result = job
            .run(Source::ndjson(reader))
            .map_err(crate::ingest_error)?;
        ingest_report = result.errors.clone();
        (Some(result), None)
    };
    let schema = match (&counted, &result) {
        // The counting fuser's schema and the pipeline's are identical;
        // prefer the counted one so `--counting` output is self-consistent.
        (Some(cs), _) => &cs.schema,
        (None, Some(r)) => &r.schema,
        (None, None) => unreachable!("at least one of counting/pipeline runs"),
    };

    if let Some(hb) = heartbeat {
        hb.finish();
    }

    if maplike {
        println!(
            "{}",
            typefuse_infer::maplike::summarize(schema, typefuse_infer::MapLikeConfig::default())
        );
    } else {
        print_schema(schema, &format)?;
    }
    report_skipped(&ingest_report, &policy);

    if stats {
        let result = result.as_ref().expect("--stats forces the pipeline");
        eprintln!();
        eprintln!("records           {}", result.records);
        eprintln!("partitions        {}", result.partitions);
        eprintln!("distinct types    {}", result.type_stats.distinct);
        eprintln!(
            "type size         min {}  max {}  avg {:.1}",
            result.type_stats.min_size, result.type_stats.max_size, result.type_stats.avg_size
        );
        eprintln!("fused type size   {}", result.fused_size);
        eprintln!("compaction ratio  {:.2}", result.compaction_ratio());
        eprintln!(
            "map {:.3}s  reduce {:.3}s  total {:.3}s",
            result.map_time.as_secs_f64(),
            result.reduce_time.as_secs_f64(),
            result.wall.as_secs_f64()
        );
    }

    if let Some(cs) = counted {
        eprintln!();
        // The counting fuser's own total, not a pipeline measurement —
        // with `--counting` alone the timed pipeline may not have run,
        // so no timings are reported here.
        eprintln!("records {}", cs.total);
        eprintln!("{:<40} {:>10} {:>8}", "path", "count", "ratio");
        for row in cs.rows().iter().take(40) {
            eprintln!(
                "{:<40} {:>10} {:>7.1}%",
                row.path,
                row.count,
                row.ratio * 100.0
            );
        }
    }

    if let Some(result) = &result {
        write_observability(
            &result.run_report(&recorder),
            &recorder,
            &metrics_json,
            &trace_json,
        )?;
    }
    Ok(())
}

/// Tell the operator on stderr what the error policy dropped.
fn report_skipped(report: &ErrorReport, policy: &ErrorPolicy) {
    if report.is_empty() {
        return;
    }
    match policy {
        ErrorPolicy::Quarantine { sink, .. } => eprintln!(
            "skipped {} bad record(s); quarantined to {}",
            report.skipped(),
            sink.display()
        ),
        _ => eprintln!("skipped {} bad record(s)", report.skipped()),
    }
}

/// Write the structured report and/or Chrome trace, if requested. The
/// report rides the shared response envelope (kind `metrics`); the
/// trace keeps the Chrome trace-event layout Perfetto expects.
fn write_observability(
    report: &typefuse_obs::RunReport,
    recorder: &Recorder,
    metrics_json: &Option<String>,
    trace_json: &Option<String>,
) -> CliResult {
    if let Some(path) = metrics_json {
        crate::job_args::write_envelope(path, "metrics", &report.to_json())?;
    }
    if let Some(path) = trace_json {
        std::fs::write(path, recorder.chrome_trace_json())
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
    }
    Ok(())
}

/// The `--progress` heartbeat: a background thread that prints
/// records/s and bytes/s to stderr once a second, computed from the
/// shared recorder's `json.records` / `json.bytes` counters.
struct Heartbeat {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Heartbeat {
    fn start(recorder: Recorder) -> Self {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::{Duration, Instant};
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let mut last_tick = Instant::now();
            let (mut last_records, mut last_bytes) = (0u64, 0u64);
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(100));
                if last_tick.elapsed() < Duration::from_secs(1) {
                    continue;
                }
                let dt = last_tick.elapsed().as_secs_f64();
                last_tick = Instant::now();
                let records = recorder.counter_value("json.records");
                let bytes = recorder.counter_value("json.bytes");
                eprintln!(
                    "progress: {records} records ({:.0}/s), {:.1} MB ({:.1} MB/s), {:.0}s elapsed",
                    (records - last_records) as f64 / dt,
                    bytes as f64 / 1e6,
                    (bytes - last_bytes) as f64 / dt / 1e6,
                    started.elapsed().as_secs_f64(),
                );
                (last_records, last_bytes) = (records, bytes);
            }
        });
        Heartbeat { stop, handle }
    }

    fn finish(self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

fn print_schema(schema: &typefuse_types::Type, format: &str) -> CliResult {
    match format {
        "text" => println!("{schema}"),
        "pretty" => println!("{}", typefuse_types::print::pretty(schema)),
        "json-schema" => println!(
            "{}",
            typefuse_json::to_string_pretty(&to_json_schema_document(schema))
        ),
        other => {
            return Err(CliError::usage(format!(
                "unknown format `{other}` (expected text, pretty or json-schema)"
            )))
        }
    }
    Ok(())
}

/// Constant-memory path: infer each line's type directly from its text
/// (no value tree) and fuse it into a running schema. Real files are
/// processed with parallel byte-range splits (`typefuse::splits`);
/// stdin falls back to a sequential line loop.
fn run_streaming(
    input: Option<&str>,
    positional_arrays: bool,
    policy: &ErrorPolicy,
    parser: &ParserOptions,
    max_line_bytes: Option<usize>,
    recorder: &Recorder,
) -> Result<(typefuse_types::Type, ErrorReport), CliError> {
    if let Some(path) = input.filter(|p| *p != "-") {
        if positional_arrays {
            return Err(CliError::usage(
                "--positional-arrays is not supported with file-parallel --streaming",
            ));
        }
        if max_line_bytes.is_some() {
            return Err(CliError::usage(
                "--max-line-bytes is not supported with file-parallel --streaming \
                 (the line-size guard would desynchronise split ownership)",
            ));
        }
        let options = IngestOptions {
            policy: policy.clone(),
            retry: RetryPolicy::default(),
            parser: parser.clone(),
        };
        let fs = typefuse::splits::infer_file_schema_with(
            std::path::Path::new(path),
            &typefuse_engine::Runtime::default(),
            &options,
            recorder,
        )
        .map_err(|e| {
            let mapped = crate::ingest_error(e);
            CliError::with_code(format!("{path}: {}", mapped.message), mapped.code)
        })?;
        return Ok((fs.schema, fs.errors));
    }
    let reader: Box<dyn Read> = Box::new(io::stdin());
    let mut cfg = FuseConfig::default();
    if positional_arrays {
        cfg.array_fusion = ArrayFusion::PositionalWhenAligned;
    }
    let mut acc = typefuse_infer::Incremental::with_config(cfg);
    let mut reader = BufReader::new(reader);
    let mut line: Vec<u8> = Vec::new();
    let mut line_no = 0u64;
    let mut report = ErrorReport::new();
    let keeps_text = policy.keeps_text();
    let note_bad = |report: &mut ErrorReport,
                    line_no: u64,
                    error: typefuse_json::Error,
                    text: &[u8]|
     -> Result<(), CliError> {
        recorder.add("json.parse_errors", 1);
        if policy.is_fail_fast() {
            return Err(crate::ingest_error(typefuse::Error::Parse(error)));
        }
        report.note(BadRecord {
            at: line_no,
            error,
            text: keeps_text.then(|| String::from_utf8_lossy(text).into_owned()),
        });
        Ok(())
    };
    loop {
        line.clear();
        let raw = read_line_bounded(
            &mut reader,
            &mut line,
            max_line_bytes,
            RetryPolicy::default(),
            recorder,
        )
        .map_err(|e| {
            crate::ingest_error(typefuse::Error::io_at(e, IoSite::line(line_no as u32 + 1)))
        })?;
        if raw.consumed == 0 {
            break;
        }
        recorder.add("json.bytes", raw.consumed as u64);
        line_no += 1;
        if raw.truncated {
            let cap = max_line_bytes.unwrap_or(usize::MAX);
            let error = typefuse_json::Error::at(
                ErrorKind::RecordTooLarge(cap),
                Position {
                    offset: 0,
                    line: line_no as u32,
                    column: 1,
                },
            );
            note_bad(&mut report, line_no, error, &line)?;
            continue;
        }
        let trimmed = trim_ascii_bytes(&line);
        if trimmed.is_empty() {
            continue;
        }
        match typefuse_infer::streaming::infer_with_options(trimmed, parser.clone()) {
            Ok(ty) => {
                recorder.add("json.records", 1);
                acc.absorb_type(ty);
            }
            Err(e) => {
                // Re-anchor at the stream line for actionable messages.
                let mut pos = e.span().start;
                pos.line = line_no as u32;
                let anchored = typefuse_json::Error::at(e.kind().clone(), pos);
                note_bad(&mut report, line_no, anchored, trimmed)?;
            }
        }
    }
    policy
        .enforce(&report, recorder)
        .map_err(crate::ingest_error)?;
    recorder.add("records", acc.count());
    Ok((acc.into_schema(), report))
}

/// Open NDJSON input (file path, `-`, or absent = stdin) as a buffered
/// reader for [`Source::ndjson`].
pub(crate) fn open_input(input: Option<&str>) -> Result<Box<dyn BufRead>, CliError> {
    let reader: Box<dyn Read> = match input {
        None | Some("-") => Box::new(io::stdin()),
        Some(path) => Box::new(
            File::open(path).map_err(|e| CliError::runtime(format!("cannot open {path}: {e}")))?,
        ),
    };
    Ok(Box::new(BufReader::new(reader)))
}

/// Read NDJSON from a file path or stdin (`-` or absent), counting
/// bytes/lines/records into `recorder` (free when disabled).
pub(crate) fn read_values(
    input: Option<&str>,
    recorder: &Recorder,
) -> Result<Vec<Value>, CliError> {
    let reader: Box<dyn Read> = match input {
        None | Some("-") => Box::new(io::stdin()),
        Some(path) => Box::new(
            File::open(path).map_err(|e| CliError::runtime(format!("cannot open {path}: {e}")))?,
        ),
    };
    NdjsonReader::new(BufReader::new(reader))
        .with_recorder(recorder.clone())
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| CliError::runtime(format!("parse error: {e}")))
}

/// [`read_values`] with parser options and an error policy: bad records
/// are dropped/quarantined per `policy` (with the documented exit codes
/// on failure) and reported alongside the clean values.
pub(crate) fn read_values_with(
    input: Option<&str>,
    parser: &ParserOptions,
    policy: &ErrorPolicy,
    max_line_bytes: Option<usize>,
    recorder: &Recorder,
) -> Result<(Vec<Value>, ErrorReport), CliError> {
    let reader: Box<dyn Read> = match input {
        None | Some("-") => Box::new(io::stdin()),
        Some(path) => Box::new(File::open(path).map_err(|e| {
            let mapped = crate::ingest_error(typefuse::Error::io_at(e, IoSite::default()));
            CliError::with_code(
                format!("cannot open {path}: {}", mapped.message),
                mapped.code,
            )
        })?),
    };
    let mut ndjson = NdjsonReader::with_options(BufReader::new(reader), parser.clone())
        .with_recorder(recorder.clone())
        .with_retry(RetryPolicy::default());
    if let Some(cap) = max_line_bytes {
        ndjson = ndjson.with_max_line_bytes(cap);
    }
    let keeps_text = policy.keeps_text();
    let mut values = Vec::new();
    let mut report = ErrorReport::new();
    // Not a `for` loop: the body needs `ndjson.last_line()` while the
    // iterator is not borrowed.
    #[allow(clippy::while_let_on_iterator)]
    while let Some(item) = ndjson.next() {
        match item {
            Ok(v) => values.push(v),
            Err(e) if matches!(e.kind(), ErrorKind::Io(_)) => {
                return Err(crate::ingest_error(typefuse::Error::io_at(
                    std::io::Error::other(e.to_string()),
                    IoSite::line(e.span().start.line),
                )));
            }
            Err(e) => {
                if policy.is_fail_fast() {
                    return Err(crate::ingest_error(typefuse::Error::Parse(e)));
                }
                let text =
                    keeps_text.then(|| String::from_utf8_lossy(ndjson.last_line()).into_owned());
                report.note(BadRecord {
                    at: e.span().start.line as u64,
                    error: e,
                    text,
                });
            }
        }
    }
    policy
        .enforce(&report, recorder)
        .map_err(crate::ingest_error)?;
    Ok((values, report))
}
