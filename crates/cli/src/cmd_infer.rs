//! `typefuse infer` — the full pipeline over an NDJSON input.

use crate::args::ArgStream;
use crate::{CliError, CliResult};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use typefuse::pipeline::{dedup_auto_sample, DedupMode, MapPath, SchemaJob, Source};
use typefuse_engine::{Dataset, ReducePlan};
use typefuse_infer::{ArrayFusion, Counting, CountingFuser, DedupCounting, FuseConfig, Fuser};
use typefuse_json::{NdjsonReader, Value};
use typefuse_obs::Recorder;
use typefuse_types::export::to_json_schema_document;

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let input = args.next_positional();
    let partitions: Option<usize> = args.parsed_option("--partitions")?;
    let workers: Option<usize> = args.parsed_option("--workers")?;
    let format = args
        .option("--format")?
        .unwrap_or_else(|| "pretty".to_string());
    let stats = args.flag("--stats");
    let counting = args.flag("--counting");
    let map_path = match args.option("--map-path")?.as_deref() {
        None => None,
        Some("events") => Some(MapPath::Events),
        Some("value") | Some("values") => Some(MapPath::Values),
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown map path `{other}` (expected events or value)"
            )))
        }
    };
    let dedup = match args.option("--dedup")?.as_deref() {
        None | Some("auto") => DedupMode::Auto,
        Some("on") => DedupMode::On,
        Some("off") => DedupMode::Off,
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown dedup mode `{other}` (expected auto, on or off)"
            )))
        }
    };
    let positional_arrays = args.flag("--positional-arrays");
    let sequential_reduce = args.flag("--sequential-reduce");
    let streaming = args.flag("--streaming");
    let maplike = args.flag("--maplike");
    let profile_json = args.option("--profile-json")?;
    let metrics_json = args.option("--metrics-json")?;
    let trace_json = args.option("--trace-json")?;
    let progress = args.flag("--progress");
    args.finish()?;

    let observing = metrics_json.is_some() || trace_json.is_some() || progress;
    let recorder = if observing {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let heartbeat = progress.then(|| Heartbeat::start(recorder.clone()));

    if counting && map_path == Some(MapPath::Events) {
        return Err(CliError::usage(
            "--counting reads record trees and needs the value path; drop --map-path events",
        ));
    }
    if profile_json.is_some() && (streaming || counting || stats) {
        return Err(CliError::usage(
            "--profile-json runs its own fused pass and is incompatible with \
             --streaming/--counting/--stats (the profile report supersedes them)",
        ));
    }
    if dedup == DedupMode::On && profile_json.is_some() {
        return Err(CliError::usage(
            "--dedup on has no effect on the profiled pass; drop --profile-json or --dedup",
        ));
    }
    if dedup == DedupMode::On && streaming {
        return Err(CliError::usage(
            "--dedup on needs the partitioned reduce; drop --streaming or --dedup",
        ));
    }

    if streaming {
        if stats || counting {
            return Err(CliError::usage(
                "--streaming is incompatible with --stats/--counting",
            ));
        }
        let outcome = run_streaming(input.as_deref(), positional_arrays, &recorder);
        if let Some(hb) = heartbeat {
            hb.finish();
        }
        let schema = outcome?;
        print_schema(&schema, &format)?;
        // Streaming has no pipeline stages; the report is the
        // recorder's own counters, histograms, spans and trace.
        write_observability(&recorder.snapshot(), &recorder, &metrics_json, &trace_json)?;
        return Ok(());
    }

    let mut job = SchemaJob::new().recorder(recorder.clone()).dedup(dedup);
    if let Some(w) = workers {
        job = job.workers(w);
    }
    if let Some(p) = partitions {
        job = job.partitions(p);
    }
    if let Some(path) = map_path {
        job = job.map_path(path);
    }
    if positional_arrays {
        job = job.fuse_config(FuseConfig {
            array_fusion: ArrayFusion::PositionalWhenAligned,
        });
    }
    if sequential_reduce {
        job = job.reduce_plan(ReducePlan::Sequential);
    }
    if !stats {
        job = job.without_type_stats();
    }

    // The profiled route replaces the plain pipeline entirely: one
    // fused Map+Reduce pass produces the schema, the per-path profile
    // report (provenance lines, kind/length/numeric statistics) and the
    // run report. Output is byte-identical for any worker/partition
    // count and either --map-path (CI diffs it).
    if let Some(profile_path) = profile_json {
        let reader = open_input(input.as_deref())?;
        let outcome = job.run_profiled(Source::ndjson(reader));
        if let Some(hb) = heartbeat {
            hb.finish();
        }
        let profiled = outcome?;
        if maplike {
            println!(
                "{}",
                typefuse_infer::maplike::summarize(
                    &profiled.profile.schema,
                    typefuse_infer::MapLikeConfig::default()
                )
            );
        } else {
            print_schema(&profiled.profile.schema, &format)?;
        }
        std::fs::write(&profile_path, profiled.profile.to_json())
            .map_err(|e| CliError::runtime(format!("cannot write {profile_path}: {e}")))?;
        write_observability(
            &profiled.run_report(&recorder),
            &recorder,
            &metrics_json,
            &trace_json,
        )?;
        return Ok(());
    }

    // Path statistics need the record trees, so `--counting` forces the
    // value route: values are read once, the counting strategy runs on
    // the engine's trait-driven reduce, and the timed pipeline reuses
    // the same dataset only when something else (type statistics, a
    // metrics report) requires it. Without `--counting` the input
    // streams straight through the job's Map route (`--map-path`,
    // events by default).
    let (result, counted) = if counting {
        let values = {
            let _span = recorder.span("pipeline.read");
            read_values(input.as_deref(), &recorder)?
        };
        let dataset = Dataset::from_vec(values, job.partitions);
        // The counting reduce mirrors the pipeline's dedup routing: On
        // (or Auto over a redundant sample) rides the shape-dedup
        // strategy, which counts paths once per distinct shape weighted
        // by multiplicity; totals and rows are identical either way.
        let use_dedup = match dedup {
            DedupMode::On => true,
            DedupMode::Off => false,
            DedupMode::Auto => {
                let sample: Vec<_> = dataset
                    .iter()
                    .take(512)
                    .map(typefuse_infer::infer_type)
                    .collect();
                dedup_auto_sample(sample.iter())
            }
        };
        // Dedup counters are not flushed here: whenever they are
        // observable (--metrics-json/--trace-json/--progress) the timed
        // pipeline below also runs with the same dedup mode and reports
        // them once.
        let counted = if use_dedup {
            let fuser = DedupCounting::new(job.fuse_config);
            let (acc, _) = dataset.fuse_values(&job.runtime, job.reduce_plan, &fuser, &recorder);
            acc.unwrap_or_else(|| fuser.empty()).finish()
        } else {
            let (acc, _) = dataset.fuse_values(&job.runtime, job.reduce_plan, &Counting, &recorder);
            acc.unwrap_or_else(CountingFuser::new).finish()
        };
        let need_pipeline = stats || observing;
        (
            need_pipeline.then(|| job.run_dataset(&dataset)),
            Some(counted),
        )
    } else {
        let reader = open_input(input.as_deref())?;
        (Some(job.run(Source::ndjson(reader))?), None)
    };
    let schema = match (&counted, &result) {
        // The counting fuser's schema and the pipeline's are identical;
        // prefer the counted one so `--counting` output is self-consistent.
        (Some(cs), _) => &cs.schema,
        (None, Some(r)) => &r.schema,
        (None, None) => unreachable!("at least one of counting/pipeline runs"),
    };

    if let Some(hb) = heartbeat {
        hb.finish();
    }

    if maplike {
        println!(
            "{}",
            typefuse_infer::maplike::summarize(schema, typefuse_infer::MapLikeConfig::default())
        );
    } else {
        print_schema(schema, &format)?;
    }

    if stats {
        let result = result.as_ref().expect("--stats forces the pipeline");
        eprintln!();
        eprintln!("records           {}", result.records);
        eprintln!("partitions        {}", result.partitions);
        eprintln!("distinct types    {}", result.type_stats.distinct);
        eprintln!(
            "type size         min {}  max {}  avg {:.1}",
            result.type_stats.min_size, result.type_stats.max_size, result.type_stats.avg_size
        );
        eprintln!("fused type size   {}", result.fused_size);
        eprintln!("compaction ratio  {:.2}", result.compaction_ratio());
        eprintln!(
            "map {:.3}s  reduce {:.3}s  total {:.3}s",
            result.map_time.as_secs_f64(),
            result.reduce_time.as_secs_f64(),
            result.wall.as_secs_f64()
        );
    }

    if let Some(cs) = counted {
        eprintln!();
        // The counting fuser's own total, not a pipeline measurement —
        // with `--counting` alone the timed pipeline may not have run,
        // so no timings are reported here.
        eprintln!("records {}", cs.total);
        eprintln!("{:<40} {:>10} {:>8}", "path", "count", "ratio");
        for row in cs.rows().iter().take(40) {
            eprintln!(
                "{:<40} {:>10} {:>7.1}%",
                row.path,
                row.count,
                row.ratio * 100.0
            );
        }
    }

    if let Some(result) = &result {
        write_observability(
            &result.run_report(&recorder),
            &recorder,
            &metrics_json,
            &trace_json,
        )?;
    }
    Ok(())
}

/// Write the structured report and/or Chrome trace, if requested.
fn write_observability(
    report: &typefuse_obs::RunReport,
    recorder: &Recorder,
    metrics_json: &Option<String>,
    trace_json: &Option<String>,
) -> CliResult {
    if let Some(path) = metrics_json {
        std::fs::write(path, report.to_json())
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = trace_json {
        std::fs::write(path, recorder.chrome_trace_json())
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
    }
    Ok(())
}

/// The `--progress` heartbeat: a background thread that prints
/// records/s and bytes/s to stderr once a second, computed from the
/// shared recorder's `json.records` / `json.bytes` counters.
struct Heartbeat {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Heartbeat {
    fn start(recorder: Recorder) -> Self {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::{Duration, Instant};
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let mut last_tick = Instant::now();
            let (mut last_records, mut last_bytes) = (0u64, 0u64);
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(100));
                if last_tick.elapsed() < Duration::from_secs(1) {
                    continue;
                }
                let dt = last_tick.elapsed().as_secs_f64();
                last_tick = Instant::now();
                let records = recorder.counter_value("json.records");
                let bytes = recorder.counter_value("json.bytes");
                eprintln!(
                    "progress: {records} records ({:.0}/s), {:.1} MB ({:.1} MB/s), {:.0}s elapsed",
                    (records - last_records) as f64 / dt,
                    bytes as f64 / 1e6,
                    (bytes - last_bytes) as f64 / dt / 1e6,
                    started.elapsed().as_secs_f64(),
                );
                (last_records, last_bytes) = (records, bytes);
            }
        });
        Heartbeat { stop, handle }
    }

    fn finish(self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

fn print_schema(schema: &typefuse_types::Type, format: &str) -> CliResult {
    match format {
        "text" => println!("{schema}"),
        "pretty" => println!("{}", typefuse_types::print::pretty(schema)),
        "json-schema" => println!(
            "{}",
            typefuse_json::to_string_pretty(&to_json_schema_document(schema))
        ),
        other => {
            return Err(CliError::usage(format!(
                "unknown format `{other}` (expected text, pretty or json-schema)"
            )))
        }
    }
    Ok(())
}

/// Constant-memory path: infer each line's type directly from its text
/// (no value tree) and fuse it into a running schema. Real files are
/// processed with parallel byte-range splits (`typefuse::splits`);
/// stdin falls back to a sequential line loop.
fn run_streaming(
    input: Option<&str>,
    positional_arrays: bool,
    recorder: &Recorder,
) -> Result<typefuse_types::Type, CliError> {
    if let Some(path) = input.filter(|p| *p != "-") {
        if positional_arrays {
            return Err(CliError::usage(
                "--positional-arrays is not supported with file-parallel --streaming",
            ));
        }
        let fs = typefuse::splits::infer_file_schema_recorded(
            std::path::Path::new(path),
            &typefuse_engine::Runtime::default(),
            recorder,
        )
        .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
        return Ok(fs.schema);
    }
    let reader: Box<dyn Read> = Box::new(io::stdin());
    let mut cfg = FuseConfig::default();
    if positional_arrays {
        cfg.array_fusion = ArrayFusion::PositionalWhenAligned;
    }
    let mut acc = typefuse_infer::Incremental::with_config(cfg);
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut line_no = 0u64;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| CliError::runtime(format!("read failed: {e}")))?;
        if n == 0 {
            break;
        }
        recorder.add("json.bytes", n as u64);
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let ty = typefuse_infer::streaming::infer_type_from_str(trimmed)
            .map_err(|e| CliError::runtime(format!("parse error on line {line_no}: {e}")))?;
        recorder.add("json.records", 1);
        acc.absorb_type(ty);
    }
    recorder.add("records", acc.count());
    Ok(acc.into_schema())
}

/// Open NDJSON input (file path, `-`, or absent = stdin) as a buffered
/// reader for [`Source::ndjson`].
pub(crate) fn open_input(input: Option<&str>) -> Result<Box<dyn BufRead>, CliError> {
    let reader: Box<dyn Read> = match input {
        None | Some("-") => Box::new(io::stdin()),
        Some(path) => Box::new(
            File::open(path).map_err(|e| CliError::runtime(format!("cannot open {path}: {e}")))?,
        ),
    };
    Ok(Box::new(BufReader::new(reader)))
}

/// Read NDJSON from a file path or stdin (`-` or absent), counting
/// bytes/lines/records into `recorder` (free when disabled).
pub(crate) fn read_values(
    input: Option<&str>,
    recorder: &Recorder,
) -> Result<Vec<Value>, CliError> {
    let reader: Box<dyn Read> = match input {
        None | Some("-") => Box::new(io::stdin()),
        Some(path) => Box::new(
            File::open(path).map_err(|e| CliError::runtime(format!("cannot open {path}: {e}")))?,
        ),
    };
    NdjsonReader::new(BufReader::new(reader))
        .with_recorder(recorder.clone())
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| CliError::runtime(format!("parse error: {e}")))
}
