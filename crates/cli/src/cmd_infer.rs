//! `typefuse infer` — the full pipeline over an NDJSON input.

use crate::args::ArgStream;
use crate::{CliError, CliResult};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use typefuse::pipeline::SchemaJob;
use typefuse_engine::ReducePlan;
use typefuse_infer::{ArrayFusion, CountingFuser, FuseConfig};
use typefuse_json::{NdjsonReader, Value};
use typefuse_types::export::to_json_schema_document;

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let input = args.next_positional();
    let partitions: Option<usize> = args.parsed_option("--partitions")?;
    let workers: Option<usize> = args.parsed_option("--workers")?;
    let format = args
        .option("--format")?
        .unwrap_or_else(|| "pretty".to_string());
    let stats = args.flag("--stats");
    let counting = args.flag("--counting");
    let positional_arrays = args.flag("--positional-arrays");
    let sequential_reduce = args.flag("--sequential-reduce");
    let streaming = args.flag("--streaming");
    let maplike = args.flag("--maplike");
    args.finish()?;

    if streaming {
        if stats || counting {
            return Err(CliError::usage(
                "--streaming is incompatible with --stats/--counting",
            ));
        }
        let schema = run_streaming(input.as_deref(), positional_arrays)?;
        print_schema(&schema, &format)?;
        return Ok(());
    }

    let values = read_values(input.as_deref())?;

    let mut job = SchemaJob::new();
    if let Some(w) = workers {
        job = job.workers(w);
    }
    if let Some(p) = partitions {
        job = job.partitions(p);
    }
    if positional_arrays {
        job = job.fuse_config(FuseConfig {
            array_fusion: ArrayFusion::PositionalWhenAligned,
        });
    }
    if sequential_reduce {
        job = job.reduce_plan(ReducePlan::Sequential);
    }
    if !stats {
        job = job.without_type_stats();
    }

    // Path statistics, if requested. The counting fuser already computes
    // the fused schema, so when no per-record type statistics are needed
    // the main pipeline run is skipped entirely.
    let counted = counting.then(|| {
        let mut cf = CountingFuser::new();
        for v in &values {
            cf.absorb(v);
        }
        cf.finish()
    });

    let result = match &counted {
        Some(cs) if !stats => {
            let mut fake = job.without_type_stats().run_values(Vec::new());
            fake.schema = cs.schema.clone();
            fake.records = cs.total;
            fake
        }
        _ => job.run_values(values),
    };

    if maplike {
        println!(
            "{}",
            typefuse_infer::maplike::summarize(
                &result.schema,
                typefuse_infer::MapLikeConfig::default()
            )
        );
    } else {
        print_schema(&result.schema, &format)?;
    }

    if stats {
        eprintln!();
        eprintln!("records           {}", result.records);
        eprintln!("partitions        {}", result.partitions);
        eprintln!("distinct types    {}", result.type_stats.distinct);
        eprintln!(
            "type size         min {}  max {}  avg {:.1}",
            result.type_stats.min_size, result.type_stats.max_size, result.type_stats.avg_size
        );
        eprintln!("fused type size   {}", result.fused_size);
        eprintln!("compaction ratio  {:.2}", result.compaction_ratio());
        eprintln!(
            "map {:.3}s  reduce {:.3}s  total {:.3}s",
            result.map_time.as_secs_f64(),
            result.reduce_time.as_secs_f64(),
            result.wall.as_secs_f64()
        );
    }

    if let Some(cs) = counted {
        eprintln!();
        eprintln!("{:<40} {:>10} {:>8}", "path", "count", "ratio");
        for row in cs.rows().iter().take(40) {
            eprintln!(
                "{:<40} {:>10} {:>7.1}%",
                row.path,
                row.count,
                row.ratio * 100.0
            );
        }
    }
    Ok(())
}

fn print_schema(schema: &typefuse_types::Type, format: &str) -> CliResult {
    match format {
        "text" => println!("{schema}"),
        "pretty" => println!("{}", typefuse_types::print::pretty(schema)),
        "json-schema" => println!(
            "{}",
            typefuse_json::to_string_pretty(&to_json_schema_document(schema))
        ),
        other => {
            return Err(CliError::usage(format!(
                "unknown format `{other}` (expected text, pretty or json-schema)"
            )))
        }
    }
    Ok(())
}

/// Constant-memory path: infer each line's type directly from its text
/// (no value tree) and fuse it into a running schema. Real files are
/// processed with parallel byte-range splits (`typefuse::splits`);
/// stdin falls back to a sequential line loop.
fn run_streaming(
    input: Option<&str>,
    positional_arrays: bool,
) -> Result<typefuse_types::Type, CliError> {
    use std::io::BufRead;
    if let Some(path) = input.filter(|p| *p != "-") {
        if positional_arrays {
            return Err(CliError::usage(
                "--positional-arrays is not supported with file-parallel --streaming",
            ));
        }
        let fs = typefuse::splits::infer_file_schema(
            std::path::Path::new(path),
            &typefuse_engine::Runtime::default(),
        )
        .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
        return Ok(fs.schema);
    }
    let reader: Box<dyn Read> = Box::new(io::stdin());
    let mut cfg = FuseConfig::default();
    if positional_arrays {
        cfg.array_fusion = ArrayFusion::PositionalWhenAligned;
    }
    let mut acc = typefuse_infer::Incremental::with_config(cfg);
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut line_no = 0u64;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| CliError::runtime(format!("read failed: {e}")))?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let ty = typefuse_infer::streaming::infer_type_from_str(trimmed)
            .map_err(|e| CliError::runtime(format!("parse error on line {line_no}: {e}")))?;
        acc.absorb_type(ty);
    }
    Ok(acc.into_schema())
}

/// Read NDJSON from a file path or stdin (`-` or absent).
pub(crate) fn read_values(input: Option<&str>) -> Result<Vec<Value>, CliError> {
    let reader: Box<dyn Read> = match input {
        None | Some("-") => Box::new(io::stdin()),
        Some(path) => Box::new(
            File::open(path).map_err(|e| CliError::runtime(format!("cannot open {path}: {e}")))?,
        ),
    };
    collect_ndjson(BufReader::new(reader))
}

pub(crate) fn collect_ndjson<R: BufRead>(reader: R) -> Result<Vec<Value>, CliError> {
    NdjsonReader::new(reader)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| CliError::runtime(format!("parse error: {e}")))
}
