//! `typefuse stats` — Table-1-style dataset statistics.

use crate::args::ArgStream;
use crate::job_args::JobFlags;
use crate::CliResult;
use typefuse_datagen::stats::DatasetStats;
use typefuse_obs::Recorder;

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let input = args.next_positional();
    let dedup = args.flag("--dedup");
    let metrics_json = args.option("--metrics-json")?;
    let flags = JobFlags::parse_ingest(args)?;
    args.finish()?;

    let recorder = if metrics_json.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let parser = flags.parser_options();
    let (values, errors) = {
        let _span = recorder.span("stats.read");
        crate::cmd_infer::read_values_with(
            input.as_deref(),
            &parser,
            &flags.policy,
            flags.max_line_bytes,
            &recorder,
        )?
    };
    if !errors.is_empty() {
        eprintln!("skipped {} bad record(s)", errors.skipped());
    }
    let stats = {
        let _span = recorder.span("stats.measure");
        DatasetStats::measure(&values)
    };

    println!("records     {}", stats.records);
    println!("bytes       {} ({})", stats.bytes, stats.human_bytes());
    println!("max depth   {}", stats.max_depth);
    println!("avg depth   {:.2}", stats.avg_depth());
    println!("avg nodes   {:.1}", stats.avg_nodes());

    // `--dedup` measures shape redundancy: how many structurally
    // distinct Figure-4 types the dataset holds, via the hash-consing
    // interner. A high records/shape ratio is what makes the
    // shape-dedup reduce (`infer --dedup`) pay off.
    let distinct_shapes = dedup.then(|| {
        let _span = recorder.span("stats.shapes");
        let mut interner = typefuse_types::TypeInterner::new();
        let mut shapes = std::collections::HashSet::new();
        for value in &values {
            shapes.insert(interner.intern(&typefuse_infer::infer_type(value)));
        }
        shapes.len() as u64
    });
    // Raw-shape signatures predict the `--map-path shape` cache: every
    // record after the first with a given signature is a cache hit.
    // Computed over the canonical serialization, so whitespace-only
    // variation in the raw input is collapsed — this is the hit rate
    // the shape route converges to, not necessarily its first-pass one.
    let raw_signatures = dedup.then(|| {
        let _span = recorder.span("stats.signatures");
        let mut signatures = std::collections::HashSet::new();
        for value in &values {
            let line = typefuse_json::to_string(value);
            if let Some(sig) = typefuse_infer::shape_signature(line.as_bytes()) {
                signatures.insert(sig);
            }
        }
        signatures.len() as u64
    });
    if let Some(distinct) = distinct_shapes {
        println!("shapes      {distinct}");
        if distinct > 0 {
            println!(
                "redundancy  {:.1} records/shape",
                stats.records as f64 / distinct as f64
            );
        }
    }
    if let Some(distinct) = raw_signatures {
        println!("signatures  {distinct}");
        if distinct > 0 && stats.records > 0 {
            println!(
                "shape-cache {:.1}% hit rate at steady state",
                (stats.records.saturating_sub(distinct)) as f64 / stats.records as f64 * 100.0
            );
        }
    }

    if let Some(path) = metrics_json {
        recorder.add("records", stats.records);
        recorder.gauge_max("stats.max_depth", stats.max_depth as u64);
        if let Some(distinct) = distinct_shapes {
            recorder.add("infer.distinct_shapes", distinct);
        }
        if let Some(distinct) = raw_signatures {
            recorder.add("infer.distinct_signatures", distinct);
        }
        crate::job_args::write_envelope(&path, "metrics", &recorder.snapshot().to_json())?;
    }
    Ok(())
}
