//! `typefuse stats` — Table-1-style dataset statistics.

use crate::args::ArgStream;
use crate::CliResult;
use typefuse_datagen::stats::DatasetStats;

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let input = args.next_positional();
    args.finish()?;

    let values =
        crate::cmd_infer::read_values(input.as_deref(), &typefuse_obs::Recorder::disabled())?;
    let stats = DatasetStats::measure(&values);

    println!("records     {}", stats.records);
    println!("bytes       {} ({})", stats.bytes, stats.human_bytes());
    println!("max depth   {}", stats.max_depth);
    println!("avg depth   {:.2}", stats.avg_depth());
    println!("avg nodes   {:.1}", stats.avg_nodes());
    Ok(())
}
