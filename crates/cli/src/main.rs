//! `typefuse` — schema inference for massive JSON datasets from the
//! command line.
//!
//! ```text
//! typefuse infer data.ndjson --format pretty --stats
//! typefuse generate --profile twitter --records 10000 | typefuse infer -
//! typefuse stats data.ndjson
//! typefuse check --schema schema.txt data.ndjson
//! typefuse sim --placement single --blocks 24
//! typefuse serve --watch events=/var/log/events.ndjson --listen 127.0.0.1:7411
//! typefuse help
//! ```

mod args;
mod cmd_bench;
mod cmd_check;
mod cmd_diff;
mod cmd_explain;
mod cmd_generate;
mod cmd_infer;
mod cmd_query;
mod cmd_registry;
mod cmd_serve;
mod cmd_sim;
mod cmd_stats;
mod cmd_watch;
mod job_args;

use args::ArgStream;
use std::process::ExitCode;

// Count heap traffic for `typefuse bench`; every other command pays
// three relaxed atomic adds per allocation, noise next to a malloc.
#[global_allocator]
static ALLOC: typefuse_bench::alloc::CountingAllocator = typefuse_bench::alloc::CountingAllocator;

/// A CLI failure: message plus exit code.
#[derive(Debug)]
pub(crate) struct CliError {
    message: String,
    code: u8,
}

impl CliError {
    pub(crate) fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    pub(crate) fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 1,
        }
    }

    pub(crate) fn with_code(message: impl Into<String>, code: u8) -> Self {
        CliError {
            message: message.into(),
            code,
        }
    }
}

impl<E: std::error::Error> From<E> for CliError {
    fn from(e: E) -> Self {
        CliError::runtime(e.to_string())
    }
}

/// Map an ingestion failure to its documented exit code: 3 for a parse
/// error, 4 for an I/O error, 5 for an exhausted `--max-errors` budget
/// (worker panics keep the generic 1). The blanket `From` above routes
/// everything to code 1, so ingestion call sites map explicitly.
pub(crate) fn ingest_error(e: typefuse::Error) -> CliError {
    let code = match &e {
        typefuse::Error::Parse(_) => 3,
        typefuse::Error::Io { .. } => 4,
        typefuse::Error::Budget { .. } => 5,
        typefuse::Error::Worker(_) => 1,
    };
    CliError::with_code(e.to_string(), code)
}

pub(crate) type CliResult = Result<(), CliError>;

const USAGE: &str = "\
typefuse — schema inference for massive JSON datasets (EDBT 2017)

USAGE:
    typefuse <COMMAND> [OPTIONS]

COMMANDS:
    infer [FILE|-]       infer a schema from NDJSON input (default: stdin)
        --partitions N     dataset partitions (default: 4 x workers)
        --workers N        worker threads (default: all cores)
        --format F         text | pretty | json-schema  (default: pretty)
        --stats            print type statistics (Tables 2-5 columns)
        --counting         print per-path presence statistics
        --map-path P       events | value: Map phase folds parser events
                           directly into types (default) or materialises
                           value trees first (differential testing)
        --dedup M          auto | on | off: reduce over distinct shapes
                           only (hash-consed interning + memoized
                           fusion); auto samples the input and dedups
                           when shapes repeat. Output is byte-identical
                           either way (default: auto)
        --positional-arrays  keep aligned positional arrays (ablation)
        --sequential-reduce  fold partials sequentially instead of tree
        --streaming          constant-memory single pass (no value trees)
        --maplike            summarise ids-as-keys records as {<key>: T}
        --profile-json F     run the profiled pipeline and write the
                             per-path dataset profile (presence, kinds,
                             length histograms, provenance lines) to F;
                             byte-identical for any --workers/--map-path
        --metrics-json F     write a structured run report (counters,
                             histograms, per-task timings) as JSON to F
        --trace-json F       write a Chrome trace to F (load in Perfetto
                             or chrome://tracing)
        --progress           heartbeat on stderr: records/s and bytes/s
        --on-error P         fail | skip | quarantine: abort on the first
                             malformed record (default), drop bad records,
                             or drop them and write each to the sidecar
                             given by --quarantine (default: fail)
        --quarantine F       sidecar NDJSON file for bad records (implies
                             --on-error quarantine)
        --max-errors N       with skip/quarantine: fail (exit 5) once more
                             than N records are bad
        --max-depth N        parser recursion limit (default: 512)
        --max-line-bytes N   treat lines longer than N bytes as bad
                             records (subject to --on-error)

    explain PATH         why the fused schema looks that way at PATH
                         (e.g. `.user.url` or `$.kw[].rank`): fused type,
                         presence ratio, which line introduced each union
                         branch, which line demoted the field to optional
        --dataset F        NDJSON input (default: stdin)
        --top N            also list the top-N paths by presence (default 10)
        --workers N        worker threads (provenance is thread-invariant)
        --partitions N     dataset partitions
        --map-path P       events | value

    generate             emit a synthetic dataset as NDJSON on stdout
        --profile P        github | twitter | wikidata | nytimes (required)
        --records N        number of records (default: 1000)
        --seed S           generator seed (default: 42)

    stats [FILE|-]       dataset statistics (records, bytes, depth)
        --dedup            also count distinct type shapes (redundancy)
        --max-depth N      parser recursion limit (default: 512)
        --metrics-json F   write read/measure metrics as JSON to F
        plus the shared ingest flags: --on-error, --quarantine,
        --max-errors, --max-line-bytes (see infer)

    check [FILE|-]       validate records against a schema
        --schema FILE      schema in typefuse notation (required)
        --max-failures N   stop reporting after N failures (default: 10)
        --max-depth N      parser recursion limit (default: 512)
        --metrics-json F   write conformance metrics as JSON to F
        plus the shared ingest flags: --on-error, --quarantine,
        --max-errors, --max-line-bytes (see infer)

    diff OLD NEW         structural drift between two NDJSON datasets
        --schemas          treat OLD/NEW as schema files instead of data

    query [FILE|-]       run a schema-checked pipeline over NDJSON data
        --script FILE      pipeline script (required; see typefuse-query)
        --schema FILE      check against this schema instead of inferring
        --check-only       type-check without evaluating

    registry ACTION      versioned schema store (--log FILE, default
                         typefuse.registry.ndjson)
        publish NAME [DATA] [--schema FILE] [--compat backward|forward|full|none]
        latest NAME | history NAME | diff NAME FROM TO | names

    bench                perf trajectory: run the workload matrix and
                         write a schema-versioned BENCH_<gitsha>.json
                         (throughput, CPU/wall time, stage quantiles,
                         peak RSS, allocations, worker utilization)
        --profiles CSV     github,twitter,wikidata,nytimes (default: all)
        --records N        records per run (default: 100000)
        --workers CSV      worker counts (default: 1,<all cores>)
        --map-paths CSV    values | events (default: values)
        --dedup CSV        off | on (default: off,on)
        --partitions N     partitions per run (default: 4 x workers)
        --no-bytes         skip byte counting (MB/s reported as 0)
        --out F            output file (default: BENCH_<gitsha>.json)

    bench compare        diff two trajectories; exit 6 on regression
        --baseline F       baseline BENCH_*.json (required)
        --current F        current BENCH_*.json (required)
        --tolerance PCT    allowed slowdown in percent (default: 10)

    serve                resident incremental-inference daemon: tail
                         NDJSON sources, fold new records into per-source
                         schemas (byte-identical to a batch re-run),
                         publish versioned snapshots with drift alerts,
                         and answer schema/profile/explain/health/diff
                         requests as line-delimited JSON over TCP
        --listen ADDR      protocol address (default: 127.0.0.1:7411;
                           port 0 picks an ephemeral port, reported in
                           the first stdout line)
        --watch NAME=PATH  tail a growing NDJSON file or FIFO
                           (repeatable; the file may not exist yet)
        --tcp-source NAME=ADDR  accept NDJSON-producing TCP connections
                           (repeatable)
        --poll-ms N        source poll interval (default: 50)
        --registry F       persist snapshots to an on-disk registry log
                           (default: in-memory)
        --compat MODE      backward | forward | full | none: gate each
                           published snapshot (default: none)
        --dedup M          auto | on | off (as in infer)
        --checkpoint-dir D persist per-source checkpoints under D and
                           resume from them on restart (crash-safe: a
                           SIGKILL loses at most the records since the
                           last checkpoint tick, never the schema)
        --checkpoint-interval-ms N  checkpoint cadence (default: 1000)
        --max-sessions N   reject protocol sessions beyond N (default: 256)
        --session-idle-ms N  close sessions idle for N ms (default: keep)
        --metrics-json F   write the run report on shutdown
        --trace-json F     write a Chrome trace of poller/session spans
                           on shutdown (load in Perfetto)
        --log-json F       tee structured events (drift alerts, bad
                           records, failures) to F as JSONL
        --log-level L      debug | info | warn | error: minimum event
                           level kept (default: info)
        plus the shared ingest flags: --on-error, --quarantine,
        --max-errors, --max-depth, --max-line-bytes (see infer)
        Live telemetry over the protocol: {\"op\":\"metrics\"} returns one
        snapshot, {\"op\":\"metrics\",\"format\":\"prometheus\"} the text
        exposition, {\"op\":\"watch\",\"interval_ms\":N} a snapshot stream

    watch ADDR           live per-source telemetry tables from a running
                         daemon (records, records/s, tail lag, skipped,
                         quarantined, shapes, published version, breaker
                         state, restarts, checkpoint size and age)
        --interval-ms N    snapshot interval (default: 1000)
        --count N          stop after N snapshots (default: stream until
                           the daemon stops)
        --raw              print the telemetry envelopes verbatim

    sim                  simulate the 6-node cluster experiment
        --placement P      single | spread   (default: single)
        --blocks N         number of input blocks (default: 176)
        --block-mb M       block size in MB (default: 128)
        --records-per-block N  (default: 7000)
        --relaxed          allow non-local tasks (network reads)
        --report-json F    write per-node utilization JSON to F (same
                           shape as the BENCH_*.json utilization block)

    help                 print this message

EXIT CODES:
    0  success        2  usage error      4  input I/O error
    1  other failure  3  parse error      5  --max-errors budget exceeded
                                          6  perf regression (bench compare)
";

fn main() -> ExitCode {
    let mut args = ArgStream::from_env();
    let command = match args.next_positional() {
        Some(c) => c,
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "infer" => cmd_infer::run(&mut args),
        "explain" => cmd_explain::run(&mut args),
        "generate" => cmd_generate::run(&mut args),
        "stats" => cmd_stats::run(&mut args),
        "check" => cmd_check::run(&mut args),
        "diff" => cmd_diff::run(&mut args),
        "query" => cmd_query::run(&mut args),
        "registry" => cmd_registry::run(&mut args),
        "bench" => cmd_bench::run(&mut args),
        "serve" => cmd_serve::run(&mut args),
        "watch" => cmd_watch::run(&mut args),
        "sim" => cmd_sim::run(&mut args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("typefuse: {}", e.message);
            if e.code == 2 {
                eprintln!("run `typefuse help` for usage");
            }
            ExitCode::from(e.code)
        }
    }
}
