//! `typefuse serve` — the resident incremental-inference daemon.
//!
//! Boots [`typefuse_serve::Daemon`] from the same shared job flags the
//! batch commands use, prints a `listening` envelope with the bound
//! address on stdout (line one — scripts read it to find the ephemeral
//! port), then blocks until a protocol `shutdown` request stops the
//! daemon.

use crate::args::ArgStream;
use crate::job_args::JobFlags;
use crate::{CliError, CliResult};
use std::io::Write;
use std::time::Duration;
use typefuse::pipeline::DedupMode;
use typefuse_obs::{Level, Recorder};
use typefuse_registry::CompatMode;
use typefuse_serve::{Daemon, ServeConfig};

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let listen = args
        .option("--listen")?
        .unwrap_or_else(|| "127.0.0.1:7411".to_string());
    let watches = args.multi_option("--watch")?;
    let tcp_sources = args.multi_option("--tcp-source")?;
    let poll_ms: u64 = args.parsed_option("--poll-ms")?.unwrap_or(50);
    let registry = args.option("--registry")?;
    let compat = match args.option("--compat")?.as_deref() {
        None => CompatMode::None,
        Some(name) => CompatMode::from_name(name).ok_or_else(|| {
            CliError::usage(format!(
                "unknown compat mode `{name}` (expected backward, forward, full or none)"
            ))
        })?,
    };
    let dedup = match args.option("--dedup")?.as_deref() {
        None | Some("auto") => DedupMode::Auto,
        Some("on") => DedupMode::On,
        Some("off") => DedupMode::Off,
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown dedup mode `{other}` (expected auto, on or off)"
            )))
        }
    };
    let map_path = args
        .option("--map-path")?
        .as_deref()
        .map(crate::job_args::parse_map_path)
        .transpose()?;
    let checkpoint_dir = args.option("--checkpoint-dir")?;
    let checkpoint_interval_ms: u64 = args
        .parsed_option("--checkpoint-interval-ms")?
        .unwrap_or(1000);
    let max_sessions: usize = args.parsed_option("--max-sessions")?.unwrap_or(256);
    let session_idle_ms: Option<u64> = args.parsed_option("--session-idle-ms")?;
    let metrics_json = args.option("--metrics-json")?;
    let trace_json = args.option("--trace-json")?;
    let log_json = args.option("--log-json")?;
    let log_level = match args.option("--log-level")?.as_deref() {
        None => Level::Info,
        Some(name) => Level::from_name(name).ok_or_else(|| {
            CliError::usage(format!(
                "unknown log level `{name}` (expected debug, info, warn or error)"
            ))
        })?,
    };
    let flags = JobFlags::parse_ingest(args)?;
    args.finish()?;

    if watches.is_empty() && tcp_sources.is_empty() {
        return Err(CliError::usage(
            "serve needs at least one source: --watch NAME=PATH or --tcp-source NAME=ADDR",
        ));
    }

    let recorder = Recorder::enabled();
    let mut job = flags.config(recorder.clone()).dedup(dedup);
    if let Some(path) = map_path {
        job = job.map_path(path);
    }
    let mut config = ServeConfig::new()
        .listen(listen)
        .poll_interval(Duration::from_millis(poll_ms.max(1)))
        .compat(compat)
        .log_level(log_level)
        .trace_spans(trace_json.is_some())
        .checkpoint_interval(Duration::from_millis(checkpoint_interval_ms.max(1)))
        .max_sessions(max_sessions.max(1))
        .job(job);
    if let Some(dir) = checkpoint_dir {
        config = config.checkpoint_dir(dir);
    }
    if let Some(ms) = session_idle_ms {
        config = config.session_idle_timeout(Duration::from_millis(ms.max(1)));
    }
    if let Some(path) = registry {
        config = config.registry(path);
    }
    if let Some(path) = log_json {
        config = config.log_sink(path);
    }
    for spec in &watches {
        let (name, path) = split_spec(spec, "--watch", "NAME=PATH")?;
        config = config.watch_file(name, path);
    }
    for spec in &tcp_sources {
        let (name, addr) = split_spec(spec, "--tcp-source", "NAME=ADDR")?;
        config = config.tcp_source(name, addr);
    }

    let daemon =
        Daemon::start(config).map_err(|e| CliError::runtime(format!("cannot start: {e}")))?;

    // Line one on stdout: where the daemon actually listens. With
    // `--listen 127.0.0.1:0` this is the only way to learn the port.
    let mut w = typefuse_obs::JsonWriter::new();
    w.begin_object();
    w.key("addr");
    w.string(&daemon.addr().to_string());
    w.end_object();
    println!("{}", typefuse_obs::envelope("listening", &w.finish()));
    std::io::stdout().flush().ok();
    eprintln!(
        "serving {} source(s) on {}; send {{\"op\":\"shutdown\"}} to stop",
        watches.len() + tcp_sources.len(),
        daemon.addr()
    );

    daemon.wait();
    daemon.shutdown();
    eprintln!("stopped");

    if let Some(path) = metrics_json {
        crate::job_args::write_envelope(&path, "metrics", &recorder.snapshot().to_json())?;
    }
    if let Some(path) = trace_json {
        std::fs::write(&path, recorder.chrome_trace_json())
            .map_err(|e| CliError::runtime(format!("cannot write trace to {path}: {e}")))?;
    }
    Ok(())
}

/// Split a `NAME=VALUE` source spec.
fn split_spec<'a>(
    spec: &'a str,
    option: &str,
    shape: &str,
) -> Result<(&'a str, &'a str), CliError> {
    match spec.split_once('=') {
        Some((name, value)) if !name.is_empty() && !value.is_empty() => Ok((name, value)),
        _ => Err(CliError::usage(format!(
            "`{option}` takes {shape}, got `{spec}`"
        ))),
    }
}
