//! Shared job flags: every subcommand that ingests NDJSON parses the
//! same options into the same [`JobConfig`] builder, so `infer`,
//! `stats`, `check`, `bench` and `serve` cannot drift apart in how they
//! spell or resolve a knob.

use crate::args::ArgStream;
use crate::{CliError, CliResult};
use typefuse::pipeline::{DedupMode, MapPath};
use typefuse::JobConfig;
use typefuse::{ErrorPolicy, RetryPolicy};
use typefuse_json::ParserOptions;
use typefuse_obs::Recorder;

/// The parsed job flags. [`JobFlags::parse`] consumes the full set
/// (execution + ingest); [`JobFlags::parse_ingest`] only the ingest
/// subset (`--on-error`, `--quarantine`, `--max-errors`, `--max-depth`,
/// `--max-line-bytes`) for subcommands without an execution matrix.
pub(crate) struct JobFlags {
    pub(crate) workers: Option<usize>,
    pub(crate) partitions: Option<usize>,
    pub(crate) map_path: Option<MapPath>,
    pub(crate) dedup: DedupMode,
    pub(crate) policy: ErrorPolicy,
    pub(crate) max_depth: Option<usize>,
    pub(crate) max_line_bytes: Option<usize>,
}

impl JobFlags {
    /// Parse the full flag set: `--workers`, `--partitions`,
    /// `--map-path`, `--dedup`, plus everything in
    /// [`JobFlags::parse_ingest`].
    pub(crate) fn parse(args: &mut ArgStream) -> Result<JobFlags, CliError> {
        let workers = args.parsed_option("--workers")?;
        let partitions = args.parsed_option("--partitions")?;
        let map_path = args
            .option("--map-path")?
            .as_deref()
            .map(parse_map_path)
            .transpose()?;
        let dedup = match args.option("--dedup")?.as_deref() {
            None | Some("auto") => DedupMode::Auto,
            Some("on") => DedupMode::On,
            Some("off") => DedupMode::Off,
            Some(other) => {
                return Err(CliError::usage(format!(
                    "unknown dedup mode `{other}` (expected auto, on or off)"
                )))
            }
        };
        let mut flags = JobFlags::parse_ingest(args)?;
        flags.workers = workers;
        flags.partitions = partitions;
        flags.map_path = map_path;
        flags.dedup = dedup;
        Ok(flags)
    }

    /// Parse only the ingest flags (error policy and parser limits).
    pub(crate) fn parse_ingest(args: &mut ArgStream) -> Result<JobFlags, CliError> {
        let on_error = args.option("--on-error")?;
        let quarantine = args.option("--quarantine")?;
        let max_errors: Option<u64> = args.parsed_option("--max-errors")?;
        let max_depth: Option<usize> = args.parsed_option("--max-depth")?;
        let max_line_bytes: Option<usize> = args.parsed_option("--max-line-bytes")?;
        let policy = resolve_policy(on_error.as_deref(), quarantine.as_deref(), max_errors)?;
        Ok(JobFlags {
            workers: None,
            partitions: None,
            map_path: None,
            dedup: DedupMode::Auto,
            policy,
            max_depth,
            max_line_bytes,
        })
    }

    /// The parser options these flags imply.
    pub(crate) fn parser_options(&self) -> ParserOptions {
        let mut options = ParserOptions::default();
        if let Some(depth) = self.max_depth {
            options.max_depth = depth;
        }
        options
    }

    /// Assemble the [`JobConfig`] every route builds on.
    pub(crate) fn config(&self, recorder: Recorder) -> JobConfig {
        let mut config = JobConfig::new()
            .recorder(recorder)
            .dedup(self.dedup)
            .on_error(self.policy.clone())
            .retry(RetryPolicy::default())
            .parser_options(self.parser_options());
        if let Some(cap) = self.max_line_bytes {
            config = config.max_line_bytes(cap);
        }
        if let Some(w) = self.workers {
            config = config.workers(w);
        }
        if let Some(p) = self.partitions {
            config = config.partitions(p);
        }
        if let Some(path) = self.map_path {
            config = config.map_path(path);
        }
        config
    }
}

/// Parse one `--map-path` value — shared by every subcommand that
/// selects a Map route, so the accepted spellings cannot drift.
pub(crate) fn parse_map_path(value: &str) -> Result<MapPath, CliError> {
    match value {
        "events" => Ok(MapPath::Events),
        "value" | "values" => Ok(MapPath::Values),
        "shape" => Ok(MapPath::Shape),
        other => Err(CliError::usage(format!(
            "unknown map path `{other}` (expected events, value or shape)"
        ))),
    }
}

/// Resolve `--on-error`/`--quarantine`/`--max-errors` into an
/// [`ErrorPolicy`], rejecting contradictory combinations.
fn resolve_policy(
    on_error: Option<&str>,
    quarantine: Option<&str>,
    max_errors: Option<u64>,
) -> Result<ErrorPolicy, CliError> {
    let policy = match (on_error, quarantine) {
        (None | Some("quarantine"), Some(sink)) => ErrorPolicy::Quarantine {
            sink: sink.into(),
            max_errors,
        },
        (Some("quarantine"), None) => {
            return Err(CliError::usage(
                "--on-error quarantine requires --quarantine FILE",
            ))
        }
        (Some("skip"), None) => ErrorPolicy::Skip { max_errors },
        (Some("skip"), Some(_)) => {
            return Err(CliError::usage(
                "--quarantine implies --on-error quarantine; drop --on-error skip",
            ))
        }
        (None | Some("fail"), None) => {
            if max_errors.is_some() {
                return Err(CliError::usage(
                    "--max-errors needs --on-error skip or quarantine",
                ));
            }
            ErrorPolicy::FailFast
        }
        (Some("fail"), Some(_)) => {
            return Err(CliError::usage(
                "--quarantine implies --on-error quarantine; drop --on-error fail",
            ))
        }
        (Some(other), _) => {
            return Err(CliError::usage(format!(
                "unknown error policy `{other}` (expected fail, skip or quarantine)"
            )))
        }
    };
    Ok(policy)
}

/// Write `payload` to `path` wrapped in the workspace response envelope
/// (`{"schema_version", "kind", "payload"}`) — the one shape every
/// JSON-emitting subcommand and the serve protocol share.
pub(crate) fn write_envelope(path: &str, kind: &str, payload: &str) -> CliResult {
    std::fs::write(path, typefuse_obs::envelope(kind, payload))
        .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_parse_covers_the_execution_matrix() {
        let mut args = ArgStream::from_vec(&[
            "--workers",
            "3",
            "--partitions",
            "8",
            "--map-path",
            "events",
            "--dedup",
            "on",
            "--on-error",
            "skip",
            "--max-errors",
            "2",
            "--max-depth",
            "64",
            "--max-line-bytes",
            "4096",
        ]);
        let flags = JobFlags::parse(&mut args).unwrap();
        args.finish().unwrap();
        assert_eq!(flags.workers, Some(3));
        assert_eq!(flags.partitions, Some(8));
        assert_eq!(flags.map_path, Some(MapPath::Events));
        assert_eq!(flags.dedup, DedupMode::On);
        assert!(matches!(
            flags.policy,
            ErrorPolicy::Skip {
                max_errors: Some(2)
            }
        ));
        assert_eq!(flags.parser_options().max_depth, 64);
        let config = flags.config(Recorder::disabled());
        assert_eq!(config.workers, Some(3));
        assert_eq!(config.max_line_bytes, Some(4096));
        assert_eq!(config.dedup, DedupMode::On);
    }

    #[test]
    fn ingest_parse_rejects_contradictions() {
        let mut args = ArgStream::from_vec(&["--max-errors", "3"]);
        assert!(JobFlags::parse_ingest(&mut args).is_err());
        let mut args = ArgStream::from_vec(&["--on-error", "quarantine"]);
        assert!(JobFlags::parse_ingest(&mut args).is_err());
        let mut args = ArgStream::from_vec(&["--on-error", "nonsense"]);
        assert!(JobFlags::parse_ingest(&mut args).is_err());
    }
}
