//! `typefuse explain` — why the fused schema looks the way it does at
//! one path.
//!
//! Runs the profiled pipeline (`SchemaJob::run_profiled`) over the
//! dataset and prints, for the requested path: the fused type, presence
//! statistics, the provenance lines (which input line introduced each
//! union branch, which line's missing key demoted the field to
//! optional), value-shape histograms, and a top-k presence table for
//! orientation. Line numbers are exact and identical for any
//! `--workers`/`--partitions` setting — provenance merges by minimum,
//! so parallelism cannot change the answer.

use crate::args::ArgStream;
use crate::{CliError, CliResult};
use typefuse::pipeline::Source;
use typefuse::JobConfig;
use typefuse_infer::fuse_all;
use typefuse_obs::LogHistogram;
use typefuse_types::paths::{parse_path, render_path, types_at_path};
use typefuse_types::Type;

pub(crate) fn run(args: &mut ArgStream) -> CliResult {
    let path_text = args.next_positional().ok_or_else(|| {
        CliError::usage(
            "explain requires a path, e.g. `typefuse explain .user.url --dataset data.ndjson`",
        )
    })?;
    let dataset = args.option("--dataset")?;
    let top: usize = args.parsed_option("--top")?.unwrap_or(10);
    let partitions: Option<usize> = args.parsed_option("--partitions")?;
    let workers: Option<usize> = args.parsed_option("--workers")?;
    let map_path = args
        .option("--map-path")?
        .as_deref()
        .map(crate::job_args::parse_map_path)
        .transpose()?;
    args.finish()?;

    let steps = parse_path(&path_text)
        .ok_or_else(|| CliError::usage(format!("malformed path `{path_text}`")))?;
    let rendered = render_path(&steps);

    let mut config = JobConfig::new();
    if let Some(w) = workers {
        config = config.workers(w);
    }
    if let Some(p) = partitions {
        config = config.partitions(p);
    }
    if let Some(path) = map_path {
        config = config.map_path(path);
    }
    let reader = crate::cmd_infer::open_input(dataset.as_deref())?;
    let profiled = config.build().run_profiled(Source::ndjson(reader))?;
    let profile = &profiled.profile;

    let profile_entry = profile.get(&rendered).ok_or_else(|| {
        CliError::runtime(format!(
            "path {rendered} does not occur in the dataset ({} records, {} paths; \
             try `typefuse infer --profile-json` for the full path list)",
            profile.records,
            profile.paths.len(),
        ))
    })?;

    // The fused type at the path. Positional arrays can fan out to
    // several element types; fuse them back into one view.
    let hits = types_at_path(&profile.schema, &steps);
    let fused_at_path = match hits.len() {
        0 => None,
        1 => Some(hits[0].clone()),
        _ => {
            let owned: Vec<Type> = hits.into_iter().cloned().collect();
            Some(fuse_all(&owned))
        }
    };

    match &fused_at_path {
        Some(ty) => println!("{rendered}: {ty}"),
        None => println!("{rendered}: (not reachable in the fused schema)"),
    }
    let ratio = if profile.records == 0 {
        0.0
    } else {
        profile_entry.count as f64 / profile.records as f64 * 100.0
    };
    let first_seen = profile_entry
        .first_line()
        .map_or_else(|| "never".to_string(), |l| format!("line {l}"));
    println!(
        "  present in {}/{} records ({ratio:.1}%), first seen at {first_seen}",
        profile_entry.count, profile.records,
    );
    match profile_entry.first_absent_line {
        Some(line) => println!("  optional: missing at line {line}"),
        None => println!("  required: present in every record occurrence"),
    }
    for (kind, count, line) in profile_entry.branches() {
        let noun = if count == 1 {
            "occurrence"
        } else {
            "occurrences"
        };
        println!("  branch {kind}: introduced at line {line} ({count} {noun})");
    }
    print_histogram("str length", &profile_entry.str_len);
    print_histogram("array length", &profile_entry.arr_len);
    print_histogram("record width", &profile_entry.rec_width);
    if let (Some(min), Some(max)) = (profile_entry.num_min, profile_entry.num_max) {
        println!("  num range: [{min}, {max}]");
    }

    if top > 0 {
        println!();
        println!("top {top} paths by presence:");
        println!("  {:<40} {:>10} {:>8}", "path", "count", "ratio");
        for (path, entry) in profile.rows().into_iter().take(top) {
            let ratio = if profile.records == 0 {
                0.0
            } else {
                entry.count as f64 / profile.records as f64 * 100.0
            };
            println!(
                "  {:<40} {:>10} {:>7.1}%{}",
                path,
                entry.count,
                ratio,
                if entry.is_optional() {
                    "  (optional)"
                } else {
                    ""
                },
            );
        }
    }
    Ok(())
}

fn print_histogram(label: &str, hist: &LogHistogram) {
    if hist.is_empty() {
        return;
    }
    let report = hist.report();
    println!(
        "  {label}: min {}  p50 {:.1}  p90 {:.1}  p99 {:.1}  max {}",
        report.min,
        report.p50(),
        report.p90(),
        report.p99(),
        report.max,
    );
}
