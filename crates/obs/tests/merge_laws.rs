//! Algebraic laws of `Recorder::merge_from`, mirroring the fusion-law
//! property tests in `typefuse-infer`: observability merges with the
//! same associativity/commutativity discipline as schema fusion, so
//! per-partition recorders can be combined in any grouping or order.

use proptest::prelude::*;
use typefuse_obs::{Recorder, RunReport};

/// One recorded operation, applied to a recorder.
#[derive(Debug, Clone)]
enum Op {
    Count(String, u64),
    Gauge(String, u64),
    Sample(String, u64),
}

fn apply(rec: &Recorder, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Count(name, n) => rec.add(name, *n),
            Op::Gauge(name, v) => rec.gauge_max(name, *v),
            Op::Sample(name, v) => rec.record(name, *v),
        }
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    let name = prop::sample::select(vec!["a", "b", "c.d"]).prop_map(str::to_string);
    prop_oneof![
        (name.clone(), 0u64..1000).prop_map(|(n, v)| Op::Count(n, v)),
        (name.clone(), 0u64..1000).prop_map(|(n, v)| Op::Gauge(n, v)),
        (name, 0u64..u64::MAX).prop_map(|(n, v)| Op::Sample(n, v)),
    ]
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(arb_op(), 0..20)
}

/// Project a recorder's state to the comparable part of its report.
/// Trace events are excluded by construction (none of the generated
/// ops open spans), and span maps are empty for the same reason.
fn state(rec: &Recorder) -> RunReport {
    rec.snapshot()
}

fn recorded(ops: &[Op]) -> Recorder {
    let rec = Recorder::enabled();
    apply(&rec, ops);
    rec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(xs in arb_ops(), ys in arb_ops()) {
        let (a1, b1) = (recorded(&xs), recorded(&ys));
        a1.merge_from(&b1);
        let (a2, b2) = (recorded(&xs), recorded(&ys));
        b2.merge_from(&a2);
        prop_assert_eq!(state(&a1), state(&b2));
    }

    #[test]
    fn merge_is_associative(xs in arb_ops(), ys in arb_ops(), zs in arb_ops()) {
        // (x ⊔ y) ⊔ z
        let left = recorded(&xs);
        let y = recorded(&ys);
        left.merge_from(&y);
        left.merge_from(&recorded(&zs));
        // x ⊔ (y ⊔ z)
        let right = recorded(&xs);
        let yz = recorded(&ys);
        yz.merge_from(&recorded(&zs));
        right.merge_from(&yz);
        prop_assert_eq!(state(&left), state(&right));
    }

    #[test]
    fn empty_recorder_is_identity(xs in arb_ops()) {
        let rec = recorded(&xs);
        let before = state(&rec);
        rec.merge_from(&Recorder::enabled());
        prop_assert_eq!(state(&rec), before.clone());
        let empty = Recorder::enabled();
        empty.merge_from(&rec);
        prop_assert_eq!(state(&empty), before);
    }

    #[test]
    fn merge_equals_replaying_both_op_lists(xs in arb_ops(), ys in arb_ops()) {
        let merged = recorded(&xs);
        merged.merge_from(&recorded(&ys));
        let mut both = xs.clone();
        both.extend(ys.clone());
        prop_assert_eq!(state(&merged), state(&recorded(&both)));
    }

    #[test]
    fn histogram_moments_match_samples(samples in prop::collection::vec(0u64..1_000_000, 0..50)) {
        let rec = Recorder::enabled();
        let hist = rec.histogram("h");
        for &s in &samples {
            hist.record(s);
        }
        let report = rec.snapshot();
        let h = &report.histograms["h"];
        prop_assert_eq!(h.count, samples.len() as u64);
        prop_assert_eq!(h.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(h.min, samples.iter().min().copied().unwrap_or(0));
        prop_assert_eq!(h.max, samples.iter().max().copied().unwrap_or(0));
        let bucket_total: u64 = h.buckets.iter().map(|b| b.count).sum();
        prop_assert_eq!(bucket_total, h.count);
        for b in &h.buckets {
            prop_assert!(b.lo <= b.hi);
            let in_range = samples.iter().filter(|&&s| b.lo <= s && s <= b.hi).count() as u64;
            prop_assert_eq!(b.count, in_range, "bucket [{}, {}]", b.lo, b.hi);
        }
    }
}
