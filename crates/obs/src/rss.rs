//! Process memory gauges, read without any external dependency.
//!
//! On Linux the kernel exposes the peak and current resident set of the
//! process in `/proc/self/status` (`VmHWM` / `VmRSS`, in kB). On other
//! platforms both readers return `None` and callers report the gauge as
//! absent rather than inventing a number.

/// Peak resident set size of this process in bytes (`VmHWM`), if the
/// platform exposes it.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_kb("VmHWM:").map(|kb| kb * 1024)
}

/// Current resident set size of this process in bytes (`VmRSS`), if the
/// platform exposes it.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_kb("VmRSS:").map(|kb| kb * 1024)
}

/// Parse one `<key>   <n> kB` line out of `/proc/self/status`.
fn proc_status_kb(key: &str) -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_kb(&status, key)
}

fn parse_status_kb(status: &str, key: &str) -> Option<u64> {
    status
        .lines()
        .find(|line| line.starts_with(key))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_proc_status_lines() {
        let status = "Name:\tcargo\nVmHWM:\t  123456 kB\nVmRSS:\t   98765 kB\n";
        assert_eq!(parse_status_kb(status, "VmHWM:"), Some(123_456));
        assert_eq!(parse_status_kb(status, "VmRSS:"), Some(98_765));
        assert_eq!(parse_status_kb(status, "VmPeak:"), None);
        assert_eq!(parse_status_kb("garbage", "VmHWM:"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn linux_reports_a_positive_peak() {
        let peak = peak_rss_bytes().expect("/proc/self/status exists on Linux");
        assert!(peak > 0);
        let current = current_rss_bytes().expect("VmRSS present");
        assert!(current > 0);
        assert!(
            peak >= current || peak > 1024,
            "peak tracks the high-water mark"
        );
    }
}
