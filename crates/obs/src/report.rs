//! Structured end-of-run reports.
//!
//! [`RunReport`] is the single report shape shared by the CLI
//! (`--metrics-json`), the bench harness, and tests: recorder metrics
//! plus per-stage task timings and free-form metadata, serialized with
//! [`RunReport::to_json`].

use crate::histogram::{bucket_bounds, HistogramCore};
use crate::json::JsonWriter;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// Snapshot of one named histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramReport {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-empty log₂ buckets, ascending.
    pub buckets: Vec<BucketCount>,
}

/// One non-empty histogram bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive lower value bound.
    pub lo: u64,
    /// Inclusive upper value bound.
    pub hi: u64,
    /// Samples in `[lo, hi]`.
    pub count: u64,
}

impl HistogramReport {
    pub(crate) fn from_core(core: &HistogramCore) -> Self {
        let count = core.count.load(Ordering::Relaxed);
        let buckets = core
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, cell)| {
                let n = cell.load(Ordering::Relaxed);
                (n > 0).then(|| {
                    let (lo, hi) = bucket_bounds(i);
                    BucketCount { lo, hi, count: n }
                })
            })
            .collect();
        HistogramReport {
            count,
            sum: core.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                core.min.load(Ordering::Relaxed)
            },
            max: core.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Arithmetic mean of the samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), 0.0 when empty.
    ///
    /// The log₂ buckets only bound each sample within a factor of two,
    /// so the estimate interpolates linearly inside the bucket holding
    /// the target rank and is clamped to the exact `[min, max]` the
    /// histogram tracked. For a single-bucket histogram this collapses
    /// to the true value range.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0.0;
        for bucket in &self.buckets {
            let n = bucket.count as f64;
            if cum + n >= target {
                let frac = if n == 0.0 {
                    0.0
                } else {
                    ((target - cum) / n).clamp(0.0, 1.0)
                };
                let estimate = bucket.lo as f64 + frac * (bucket.hi - bucket.lo) as f64;
                return estimate.clamp(self.min as f64, self.max as f64);
            }
            cum += n;
        }
        self.max as f64
    }

    /// Estimated median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Write this histogram as a JSON object into `w` (the shape used
    /// by [`RunReport::to_json`] and the profiler's report).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("count");
        w.number(self.count);
        w.key("sum");
        w.number(self.sum);
        w.key("min");
        w.number(self.min);
        w.key("max");
        w.number(self.max);
        w.key("mean");
        w.float(self.mean());
        w.key("p50");
        w.float(self.p50());
        w.key("p90");
        w.float(self.p90());
        w.key("p99");
        w.float(self.p99());
        w.key("buckets");
        w.begin_array();
        for bucket in &self.buckets {
            w.begin_object();
            w.key("lo");
            w.number(bucket.lo);
            w.key("hi");
            w.number(bucket.hi);
            w.key("count");
            w.number(bucket.count);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
}

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanReport {
    /// Times the span was entered.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Longest single entry, in nanoseconds.
    pub max_ns: u64,
}

/// Timings of one task within a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaskReport {
    /// Partition index the task processed.
    pub partition: usize,
    /// Worker thread that executed the task. Tasks enqueue at stage
    /// start, so the task occupied this worker over
    /// `[queue_wait_ns, queue_wait_ns + execute_ns]` of the stage.
    pub worker: usize,
    /// Nanoseconds between stage submission and task pickup.
    pub queue_wait_ns: u64,
    /// Nanoseconds spent executing the task body.
    pub execute_ns: u64,
}

/// Per-stage timing summary: a named collection of task timings plus
/// the stage's wall-clock time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageReport {
    /// Stage name, e.g. `map` or `reduce`.
    pub name: String,
    /// Wall-clock nanoseconds for the whole stage.
    pub wall_ns: u64,
    /// Per-task timings, in partition order.
    pub tasks: Vec<TaskReport>,
}

/// Busy rollup for one worker (or one simulated cluster node).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkerSlice {
    /// Worker (or node) index.
    pub worker: usize,
    /// Tasks the worker executed.
    pub tasks: u64,
    /// Total nanoseconds the worker spent executing tasks.
    pub busy_ns: u64,
    /// Distribution of the queue waits of this worker's tasks (empty
    /// for simulated executions, which model no pickup delay).
    pub queue_wait: HistogramReport,
}

/// Per-worker utilization of one stage — the shared JSON shape emitted
/// by the real engine thread pool, the bench harness's
/// `BENCH_*.json` trajectory, and the cluster simulator, so the paper's
/// Table 7/8 under-utilisation story can be compared like-for-like
/// between the simulated cluster and the live engine.
///
/// Workers that never picked up a task are listed with zero busy time;
/// [`UtilizationReport::idle_workers`] counts them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UtilizationReport {
    /// Wall-clock nanoseconds of the stage (the makespan).
    pub wall_ns: u64,
    /// One slice per worker, in worker order, idle workers included.
    pub workers: Vec<WorkerSlice>,
}

impl UtilizationReport {
    /// Build from a stage's task timings. `workers` is the configured
    /// pool size; a task whose worker id exceeds it still gets a slice,
    /// so the report never drops work.
    pub fn from_stage(stage: &StageReport, workers: usize) -> Self {
        let slots = stage
            .tasks
            .iter()
            .map(|t| t.worker + 1)
            .max()
            .unwrap_or(0)
            .max(workers);
        let mut slices: Vec<WorkerSlice> = (0..slots)
            .map(|worker| WorkerSlice {
                worker,
                ..WorkerSlice::default()
            })
            .collect();
        let mut waits: Vec<crate::LogHistogram> = vec![crate::LogHistogram::new(); slots];
        for task in &stage.tasks {
            let slice = &mut slices[task.worker];
            slice.tasks += 1;
            slice.busy_ns += task.execute_ns;
            waits[task.worker].record(task.queue_wait_ns);
        }
        for (slice, wait) in slices.iter_mut().zip(&waits) {
            slice.queue_wait = wait.report();
        }
        UtilizationReport {
            wall_ns: stage.wall_ns,
            workers: slices,
        }
    }

    /// Total busy nanoseconds across all workers.
    pub fn total_busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// Mean worker utilization over the stage wall, in `[0, 1]`:
    /// `total busy / (wall x workers)`. Mirrors the simulator's
    /// core-utilization formula.
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 || self.workers.is_empty() {
            return 0.0;
        }
        self.total_busy_ns() as f64 / (self.wall_ns as f64 * self.workers.len() as f64)
    }

    /// Busy fraction of one worker slice over the stage wall.
    pub fn worker_utilization(&self, slice: &WorkerSlice) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            slice.busy_ns as f64 / self.wall_ns as f64
        }
    }

    /// Workers that executed at least one task.
    pub fn busy_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.tasks > 0).count()
    }

    /// Workers that never ran anything — the paper's "remaining four
    /// nodes were idle", observed on the live pool.
    pub fn idle_workers(&self) -> usize {
        self.workers.len() - self.busy_workers()
    }

    /// Write as a JSON object into `w` (the shape shared by
    /// `BENCH_*.json`, `typefuse sim --report-json` and the bench
    /// harness's tests).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("wall_ns");
        w.number(self.wall_ns);
        w.key("busy_ns");
        w.number(self.total_busy_ns());
        w.key("utilization");
        w.float(self.utilization());
        w.key("busy_workers");
        w.number(self.busy_workers() as u64);
        w.key("idle_workers");
        w.number(self.idle_workers() as u64);
        w.key("workers");
        w.begin_array();
        for slice in &self.workers {
            w.begin_object();
            w.key("worker");
            w.number(slice.worker as u64);
            w.key("tasks");
            w.number(slice.tasks);
            w.key("busy_ns");
            w.number(slice.busy_ns);
            w.key("utilization");
            w.float(self.worker_utilization(slice));
            w.key("queue_wait");
            slice.queue_wait.write_json(w);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }

    /// Serialize as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// The full structured run report.
///
/// `counters`/`gauges`/`histograms`/`spans` come from
/// [`Recorder::snapshot`](crate::Recorder::snapshot); `stages`,
/// `values` (derived floats such as records-per-second) and `meta`
/// (free-form strings such as the input path) are filled by the caller
/// that owns that context.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Monotonic event counts, e.g. `fuse.calls`.
    pub counters: BTreeMap<String, u64>,
    /// Maximum-value gauges, e.g. `infer.max_depth`.
    pub gauges: BTreeMap<String, u64>,
    /// Value distributions, e.g. `fuse.union_width`.
    pub histograms: BTreeMap<String, HistogramReport>,
    /// Timed span aggregates keyed by span name.
    pub spans: BTreeMap<String, SpanReport>,
    /// Per-stage task timings (map, reduce, …).
    pub stages: Vec<StageReport>,
    /// Derived floating-point values, e.g. `records_per_sec`.
    pub values: BTreeMap<String, f64>,
    /// Free-form metadata, e.g. `input` → path.
    pub meta: BTreeMap<String, String>,
}

impl RunReport {
    /// Serialize as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();

        w.key("counters");
        w.begin_object();
        for (name, value) in &self.counters {
            w.key(name);
            w.number(*value);
        }
        w.end_object();

        w.key("gauges");
        w.begin_object();
        for (name, value) in &self.gauges {
            w.key(name);
            w.number(*value);
        }
        w.end_object();

        w.key("histograms");
        w.begin_object();
        for (name, hist) in &self.histograms {
            w.key(name);
            hist.write_json(&mut w);
        }
        w.end_object();

        w.key("spans");
        w.begin_object();
        for (name, span) in &self.spans {
            w.key(name);
            w.begin_object();
            w.key("count");
            w.number(span.count);
            w.key("total_ns");
            w.number(span.total_ns);
            w.key("max_ns");
            w.number(span.max_ns);
            w.end_object();
        }
        w.end_object();

        w.key("stages");
        w.begin_array();
        for stage in &self.stages {
            w.begin_object();
            w.key("name");
            w.string(&stage.name);
            w.key("wall_ns");
            w.number(stage.wall_ns);
            w.key("tasks");
            w.begin_array();
            for task in &stage.tasks {
                w.begin_object();
                w.key("partition");
                w.number(task.partition as u64);
                w.key("worker");
                w.number(task.worker as u64);
                w.key("queue_wait_ns");
                w.number(task.queue_wait_ns);
                w.key("execute_ns");
                w.number(task.execute_ns);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();

        w.key("values");
        w.begin_object();
        for (name, value) in &self.values {
            w.key(name);
            w.float(*value);
        }
        w.end_object();

        w.key("meta");
        w.begin_object();
        for (name, value) in &self.meta {
            w.key(name);
            w.string(value);
        }
        w.end_object();

        w.end_object();
        w.finish()
    }

    /// The fault counters the ingestion layer records; surfaced in
    /// [`RunReport::to_text`] with explicit zeros so a clean run reads
    /// as a clean run rather than omitting the lines.
    pub const INGEST_FAULT_COUNTERS: [&'static str; 4] = [
        "ingest.retries",
        "ingest.skipped",
        "ingest.quarantined",
        "ingest.worker_panics",
    ];

    /// Human-readable summary: one line per counter, gauge and span,
    /// one per histogram with its mean and estimated p50/p90/p99, a
    /// dedicated `ingest` block for the fault counters (always printed,
    /// zero when nothing went wrong), and a `workers` section per stage
    /// with each worker's busy share and queue-wait p50/p99. The
    /// structured counterpart is [`RunReport::to_json`].
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            if name.starts_with("ingest.") {
                continue; // surfaced in the ingest block below
            }
            let _ = writeln!(out, "counter    {name:<24} {value}");
        }
        for name in Self::INGEST_FAULT_COUNTERS {
            let value = self.counters.get(name).copied().unwrap_or(0);
            let _ = writeln!(out, "ingest     {name:<24} {value}");
        }
        // Non-canonical ingest.* counters added by future subsystems
        // still show up, after the canonical block.
        for (name, value) in &self.counters {
            if name.starts_with("ingest.") && !Self::INGEST_FAULT_COUNTERS.contains(&name.as_str())
            {
                let _ = writeln!(out, "ingest     {name:<24} {value}");
            }
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge      {name:<24} {value}");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram  {name:<24} n {}  min {}  max {}  mean {:.1}  p50 {:.1}  p90 {:.1}  p99 {:.1}",
                hist.count,
                hist.min,
                hist.max,
                hist.mean(),
                hist.p50(),
                hist.p90(),
                hist.p99(),
            );
        }
        for (name, span) in &self.spans {
            let _ = writeln!(
                out,
                "span       {name:<24} n {}  total {:.3}ms  max {:.3}ms",
                span.count,
                span.total_ns as f64 / 1e6,
                span.max_ns as f64 / 1e6,
            );
        }
        for stage in &self.stages {
            if stage.tasks.is_empty() {
                continue;
            }
            let workers = stage.tasks.iter().map(|t| t.worker + 1).max().unwrap_or(1);
            let u = UtilizationReport::from_stage(stage, workers);
            let _ = writeln!(
                out,
                "workers    {:<24} wall {:.3}ms  utilization {:.1}%  busy {} / idle {}",
                stage.name,
                u.wall_ns as f64 / 1e6,
                u.utilization() * 100.0,
                u.busy_workers(),
                u.idle_workers(),
            );
            for slice in &u.workers {
                let _ = writeln!(
                    out,
                    "  worker {:<3} busy {:>5.1}%  tasks {:<4} queue-wait p50 {:.3}ms  p99 {:.3}ms",
                    slice.worker,
                    u.worker_utilization(slice) * 100.0,
                    slice.tasks,
                    slice.queue_wait.p50() / 1e6,
                    slice.queue_wait.p99() / 1e6,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_serializes_to_stable_shape() {
        assert_eq!(
            RunReport::default().to_json(),
            r#"{"counters":{},"gauges":{},"histograms":{},"spans":{},"stages":[],"values":{},"meta":{}}"#
        );
    }

    #[test]
    fn full_report_round_trips_through_the_workspace_parser() {
        let mut report = RunReport::default();
        report.counters.insert("records".into(), 1000);
        report.counters.insert("fuse.calls".into(), 999);
        report.gauges.insert("infer.max_depth".into(), 4);
        report.histograms.insert(
            "fuse.union_width".into(),
            HistogramReport {
                count: 2,
                sum: 5,
                min: 1,
                max: 4,
                buckets: vec![
                    BucketCount {
                        lo: 1,
                        hi: 1,
                        count: 1,
                    },
                    BucketCount {
                        lo: 4,
                        hi: 7,
                        count: 1,
                    },
                ],
            },
        );
        report.spans.insert(
            "reduce.level.0".into(),
            SpanReport {
                count: 1,
                total_ns: 42,
                max_ns: 42,
            },
        );
        report.stages.push(StageReport {
            name: "map".into(),
            wall_ns: 1234,
            tasks: vec![TaskReport {
                partition: 0,
                worker: 2,
                queue_wait_ns: 10,
                execute_ns: 90,
            }],
        });
        report.values.insert("records_per_sec".into(), 1.5e6);
        report.meta.insert("input".into(), "data.ndjson".into());

        let json = report.to_json();
        for needle in [
            r#""records":1000"#,
            r#""fuse.calls":999"#,
            r#""infer.max_depth":4"#,
            r#""lo":4,"hi":7"#,
            r#""reduce.level.0""#,
            r#""worker":2"#,
            r#""queue_wait_ns":10"#,
            r#""records_per_sec":1500000.0"#,
            r#""input":"data.ndjson""#,
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(HistogramReport::default().mean(), 0.0);
    }

    #[test]
    fn quantiles_handle_empty() {
        let h = HistogramReport::default();
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn single_value_quantiles_collapse_to_that_value() {
        // One sample of 5 lands in bucket [4, 7]; clamping to the exact
        // min/max recovers the value for every quantile.
        let mut h = HistogramReport {
            count: 1,
            sum: 5,
            min: 5,
            max: 5,
            buckets: vec![BucketCount {
                lo: 4,
                hi: 7,
                count: 1,
            }],
        };
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 5.0, "q = {q}");
        }
        // Two spread buckets: the quantiles are ordered and bounded.
        h.count = 100;
        h.min = 1;
        h.max = 1000;
        h.buckets = vec![
            BucketCount {
                lo: 1,
                hi: 1,
                count: 90,
            },
            BucketCount {
                lo: 512,
                hi: 1023,
                count: 10,
            },
        ];
        assert!(h.p50() <= h.p90() && h.p90() <= h.p99());
        assert_eq!(h.p50(), 1.0);
        assert!(h.p99() >= 512.0 && h.p99() <= 1000.0);
    }

    #[test]
    fn json_includes_quantile_estimates() {
        let mut report = RunReport::default();
        report.histograms.insert(
            "lat".into(),
            HistogramReport {
                count: 1,
                sum: 5,
                min: 5,
                max: 5,
                buckets: vec![BucketCount {
                    lo: 4,
                    hi: 7,
                    count: 1,
                }],
            },
        );
        let json = report.to_json();
        for needle in [r#""p50":5.0"#, r#""p90":5.0"#, r#""p99":5.0"#] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    fn stage_with_two_workers() -> StageReport {
        StageReport {
            name: "map".into(),
            wall_ns: 100,
            tasks: vec![
                TaskReport {
                    partition: 0,
                    worker: 0,
                    queue_wait_ns: 5,
                    execute_ns: 40,
                },
                TaskReport {
                    partition: 1,
                    worker: 0,
                    queue_wait_ns: 45,
                    execute_ns: 30,
                },
                TaskReport {
                    partition: 2,
                    worker: 1,
                    queue_wait_ns: 7,
                    execute_ns: 60,
                },
            ],
        }
    }

    #[test]
    fn utilization_groups_tasks_by_worker_and_lists_idle_slices() {
        let u = UtilizationReport::from_stage(&stage_with_two_workers(), 4);
        assert_eq!(u.wall_ns, 100);
        assert_eq!(u.workers.len(), 4);
        assert_eq!(u.workers[0].busy_ns, 70);
        assert_eq!(u.workers[0].tasks, 2);
        assert_eq!(u.workers[1].busy_ns, 60);
        assert_eq!(u.workers[2].tasks, 0);
        assert_eq!(u.total_busy_ns(), 130);
        assert_eq!(u.busy_workers(), 2);
        assert_eq!(u.idle_workers(), 2);
        assert!((u.utilization() - 130.0 / 400.0).abs() < 1e-12);
        assert_eq!(u.workers[0].queue_wait.count, 2);
        // A worker id beyond the pool size still gets a slice.
        let mut stage = stage_with_two_workers();
        stage.tasks[2].worker = 9;
        let wide = UtilizationReport::from_stage(&stage, 2);
        assert_eq!(wide.workers.len(), 10);
        assert_eq!(wide.total_busy_ns(), 130, "no work dropped");
    }

    #[test]
    fn utilization_json_has_the_shared_shape() {
        let u = UtilizationReport::from_stage(&stage_with_two_workers(), 2);
        let json = u.to_json();
        for needle in [
            r#""wall_ns":100"#,
            r#""busy_ns":130"#,
            r#""utilization":0.65"#,
            r#""busy_workers":2"#,
            r#""idle_workers":0"#,
            r#""worker":1"#,
            r#""tasks":1"#,
            r#""queue_wait":{"count":"#,
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(UtilizationReport::default().utilization(), 0.0);
    }

    #[test]
    fn text_summary_surfaces_ingest_counters_and_worker_sections() {
        let mut report = RunReport::default();
        report.counters.insert("records".into(), 7);
        report.counters.insert("ingest.retries".into(), 3);
        report.stages.push(stage_with_two_workers());
        let text = report.to_text();
        // Recorded fault counter keeps its value; the rest default to 0.
        assert!(text.contains("ingest     ingest.retries"), "{text}");
        assert!(
            text.lines()
                .any(|l| l.starts_with("ingest     ingest.retries") && l.ends_with('3')),
            "{text}"
        );
        assert!(
            text.lines()
                .any(|l| l.starts_with("ingest     ingest.skipped") && l.ends_with('0')),
            "{text}"
        );
        assert!(text.contains("ingest     ingest.quarantined"), "{text}");
        assert!(text.contains("ingest     ingest.worker_panics"), "{text}");
        // The fault counters appear once, not again as plain counters.
        assert!(!text.contains("counter    ingest.retries"), "{text}");
        // Workers section: busy %, queue-wait quantiles, per stage.
        assert!(text.contains("workers    map"), "{text}");
        assert!(text.contains("worker 0"), "{text}");
        assert!(text.contains("queue-wait p50"), "{text}");
    }

    #[test]
    fn text_summary_lists_metrics_with_quantiles() {
        let mut report = RunReport::default();
        report.counters.insert("records".into(), 4);
        report.histograms.insert(
            "infer.record_width".into(),
            HistogramReport {
                count: 1,
                sum: 2,
                min: 2,
                max: 2,
                buckets: vec![BucketCount {
                    lo: 2,
                    hi: 3,
                    count: 1,
                }],
            },
        );
        report.spans.insert(
            "pipeline.map".into(),
            SpanReport {
                count: 1,
                total_ns: 1_000_000,
                max_ns: 1_000_000,
            },
        );
        let text = report.to_text();
        assert!(text.contains("counter    records"));
        assert!(text.contains("p50 2.0"), "{text}");
        assert!(text.contains("span       pipeline.map"));
    }
}
