//! Leveled structured event log for resident services.
//!
//! A daemon's metrics say *how much*; its events say *what happened* —
//! a drift alert, a source failing its error budget, a session panic.
//! [`EventLog`] records those as structured JSONL records (sequence
//! number, unix-millisecond timestamp, level, source, span context,
//! message) into a bounded in-memory ring buffer, optionally teeing
//! every record to an append-only sink file. Records below the
//! configured minimum level are dropped at the call site.
//!
//! Cloning an [`EventLog`] shares state, exactly like
//! [`Recorder`](crate::Recorder): the daemon hands clones to source
//! folders and session threads, and they all feed one ring.

use crate::JsonWriter;
use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Chatty diagnostics (per-batch folds).
    Debug,
    /// Normal lifecycle (startup, publishes).
    Info,
    /// Something drifted or was dropped but the daemon is fine.
    Warn,
    /// A source or session failed.
    Error,
}

impl Level {
    /// Parse a level name (`debug`, `info`, `warn`, `error`).
    pub fn from_name(name: &str) -> Option<Level> {
        match name {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    /// The lowercase level name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn index(self) -> usize {
        match self {
            Level::Debug => 0,
            Level::Info => 1,
            Level::Warn => 2,
            Level::Error => 3,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured event record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number, 1-based per log.
    pub seq: u64,
    /// Milliseconds since the unix epoch at record time.
    pub unix_ms: u64,
    /// Severity.
    pub level: Level,
    /// Which component emitted it (a source name, `daemon`, `session`).
    pub source: String,
    /// Span context: what the component was doing (`poll`, `publish`,
    /// `request`).
    pub span: String,
    /// Human-readable detail.
    pub message: String,
}

impl Event {
    /// One JSONL record:
    /// `{"seq":N,"ts_ms":N,"level":L,"source":S,"span":P,"message":M}`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("seq");
        w.number(self.seq);
        w.key("ts_ms");
        w.number(self.unix_ms);
        w.key("level");
        w.string(self.level.name());
        w.key("source");
        w.string(&self.source);
        w.key("span");
        w.string(&self.span);
        w.key("message");
        w.string(&self.message);
        w.end_object();
        w.finish()
    }
}

#[derive(Debug)]
struct LogInner {
    seq: AtomicU64,
    min_level: Level,
    capacity: usize,
    ring: Mutex<VecDeque<Event>>,
    /// Accepted events per level (drops by the ring don't decrement —
    /// these count what *happened*, the ring holds what's *retained*).
    counts: [AtomicU64; 4],
    sink: Option<Mutex<std::fs::File>>,
}

/// A bounded, leveled, shareable structured event log.
#[derive(Debug, Clone)]
pub struct EventLog {
    inner: Arc<LogInner>,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(1024, Level::Info)
    }
}

impl EventLog {
    /// A log retaining the most recent `capacity` events at or above
    /// `min_level`, in memory only.
    pub fn new(capacity: usize, min_level: Level) -> EventLog {
        EventLog {
            inner: Arc::new(LogInner {
                seq: AtomicU64::new(0),
                min_level,
                capacity: capacity.max(1),
                ring: Mutex::new(VecDeque::new()),
                counts: Default::default(),
                sink: None,
            }),
        }
    }

    /// Like [`EventLog::new`], additionally appending every accepted
    /// event as one JSONL line to `path` (created if missing).
    pub fn with_sink(capacity: usize, min_level: Level, path: &Path) -> std::io::Result<EventLog> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut log = EventLog::new(capacity, min_level);
        Arc::get_mut(&mut log.inner)
            .expect("freshly created log is unshared")
            .sink = Some(Mutex::new(file));
        Ok(log)
    }

    /// The configured minimum level.
    pub fn min_level(&self) -> Level {
        self.inner.min_level
    }

    /// Record one event. Below-min-level events are dropped without a
    /// sequence number; everything else enters the ring (evicting the
    /// oldest record past capacity) and the sink, if any.
    pub fn log(&self, level: Level, source: &str, span: &str, message: impl Into<String>) {
        if level < self.inner.min_level {
            return;
        }
        let event = Event {
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed) + 1,
            unix_ms: unix_ms(),
            level,
            source: source.to_string(),
            span: span.to_string(),
            message: message.into(),
        };
        self.inner.counts[level.index()].fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = &self.inner.sink {
            let mut line = event.to_json();
            line.push('\n');
            let mut file = sink.lock().expect("event sink poisoned");
            let _ = file.write_all(line.as_bytes());
        }
        let mut ring = self.inner.ring.lock().expect("event ring poisoned");
        if ring.len() == self.inner.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// The most recent `n` retained events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let ring = self.inner.ring.lock().expect("event ring poisoned");
        ring.iter()
            .skip(ring.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// How many events of `level` were accepted (including evicted ones).
    pub fn count(&self, level: Level) -> u64 {
        self.inner.counts[level.index()].load(Ordering::Relaxed)
    }

    /// Total accepted events across all levels.
    pub fn total(&self) -> u64 {
        self.inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_parse_and_render() {
        assert!(Level::Debug < Level::Info && Level::Warn < Level::Error);
        for level in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::from_name(level.name()), Some(level));
        }
        assert_eq!(Level::from_name("loud"), None);
        assert_eq!(Level::Warn.to_string(), "warn");
    }

    #[test]
    fn min_level_filters_and_counts_track_levels() {
        let log = EventLog::new(8, Level::Warn);
        log.log(Level::Debug, "s", "x", "dropped");
        log.log(Level::Info, "s", "x", "dropped");
        log.log(Level::Warn, "s", "x", "kept");
        log.log(Level::Error, "s", "x", "kept");
        assert_eq!(log.total(), 2);
        assert_eq!(log.count(Level::Warn), 1);
        assert_eq!(log.count(Level::Error), 1);
        assert_eq!(log.count(Level::Info), 0);
        let events = log.recent(10);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 1, "dropped events take no sequence number");
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let log = EventLog::new(3, Level::Debug);
        for i in 0..10 {
            log.log(Level::Info, "s", "tick", format!("event {i}"));
        }
        let events = log.recent(10);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].message, "event 7");
        assert_eq!(events[2].message, "event 9");
        assert_eq!(log.total(), 10, "counts survive eviction");
        assert_eq!(log.recent(1).len(), 1);
    }

    #[test]
    fn clones_share_the_ring() {
        let log = EventLog::new(4, Level::Debug);
        let clone = log.clone();
        clone.log(Level::Info, "a", "x", "one");
        log.log(Level::Info, "b", "y", "two");
        assert_eq!(log.recent(10).len(), 2);
        assert_eq!(clone.recent(10)[1].seq, 2);
    }

    #[test]
    fn event_json_is_structured_jsonl() {
        let event = Event {
            seq: 4,
            unix_ms: 1700000000000,
            level: Level::Warn,
            source: "events".to_string(),
            span: "publish".to_string(),
            message: "v1→v2: added $.tags".to_string(),
        }
        .to_json();
        assert_eq!(
            event,
            "{\"seq\":4,\"ts_ms\":1700000000000,\"level\":\"warn\",\
             \"source\":\"events\",\"span\":\"publish\",\
             \"message\":\"v1→v2: added $.tags\"}"
        );
    }

    #[test]
    fn sink_appends_one_json_line_per_event() {
        let path = std::env::temp_dir().join(format!(
            "typefuse-eventlog-test-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let log = EventLog::with_sink(8, Level::Info, &path).unwrap();
        log.log(Level::Debug, "s", "x", "filtered out of the sink too");
        log.log(Level::Info, "s", "boot", "started");
        log.log(Level::Error, "s", "poll", "read failed");
        drop(log);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"level\":\"info\""), "{}", lines[0]);
        assert!(lines[1].contains("\"span\":\"poll\""), "{}", lines[1]);
        std::fs::remove_file(&path).ok();
    }
}
