//! Chrome `trace_event` export.
//!
//! The output is the JSON object format Perfetto and `chrome://tracing`
//! accept: `{"traceEvents": [...]}` where each event is a "complete"
//! event (`"ph": "X"`) with microsecond timestamp and duration. All
//! events share `pid` 1; `tid` is the per-thread track id assigned by
//! [`crate::span`](mod@crate::span).

use crate::json::JsonWriter;

/// One completed span on the shared timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Dotted span name, e.g. `reduce.level.2`.
    pub name: String,
    /// Start, in microseconds since the recorder's epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Thread track id.
    pub tid: u64,
}

/// Serialize events as a Chrome trace JSON document.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();
    for event in events {
        w.begin_object();
        w.key("name");
        w.string(&event.name);
        w.key("cat");
        w.string("typefuse");
        w.key("ph");
        w.string("X");
        w.key("ts");
        w.number(event.ts_us);
        w.key("dur");
        w.number(event.dur_us);
        w.key("pid");
        w.number(1);
        w.key("tid");
        w.number(event.tid);
        w.end_object();
    }
    w.end_array();
    w.key("displayTimeUnit");
    w.string("ms");
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(
            to_chrome_json(&[]),
            r#"{"traceEvents":[],"displayTimeUnit":"ms"}"#
        );
    }

    #[test]
    fn events_carry_all_required_fields() {
        let json = to_chrome_json(&[TraceEvent {
            name: "map \"quoted\"".to_string(),
            ts_us: 10,
            dur_us: 5,
            tid: 3,
        }]);
        assert_eq!(
            json,
            "{\"traceEvents\":[{\"name\":\"map \\\"quoted\\\"\",\"cat\":\"typefuse\",\
             \"ph\":\"X\",\"ts\":10,\"dur\":5,\"pid\":1,\"tid\":3}],\
             \"displayTimeUnit\":\"ms\"}"
        );
    }
}
