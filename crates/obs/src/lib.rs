//! `typefuse-obs`: zero-dependency tracing and metrics for the typefuse
//! pipeline.
//!
//! The schema-inference pipeline is a map/reduce over partitions whose
//! schemas merge through an associative, commutative `fuse`. This crate
//! applies the same algebraic discipline to observability:
//!
//! * a [`Recorder`] owns named counters, max-gauges, log₂-bucketed
//!   [`histogram`]s and span statistics; per-thread or per-partition
//!   recorders [`Recorder::merge_from`] associatively, so metrics can be
//!   collected exactly like partial schemas and combined at the end;
//! * [`span!`] opens a hierarchical timed span whose guard records
//!   wall-clock duration on drop and emits a Chrome `trace_event`
//!   (viewable in Perfetto via `chrome://tracing` JSON) with per-thread
//!   track ids, so nested spans render as a flame graph;
//! * [`RunReport`] is the structured end-of-run summary — counters,
//!   gauges, histograms, spans, per-stage task timings — serialized to
//!   JSON without any external dependency;
//! * for resident services, [`TelemetryHub`] keeps live counter/gauge
//!   series that poller and session threads bump lock-free, sampled on
//!   demand into versioned byte-deterministic snapshots (JSON or
//!   Prometheus text exposition 0.0.4), and [`EventLog`] is a bounded,
//!   leveled, structured event ring with an optional JSONL sink.
//!
//! A disabled recorder (the default) reduces every operation to a
//! branch on `None`; handles ([`Counter`], [`Gauge`], [`Histogram`])
//! can be hoisted out of hot loops so the per-record cost is a single
//! relaxed atomic add when enabled and nothing measurable when not.
//!
//! Counter names are dynamic strings, so subsystems add their own
//! without touching this crate. The fault-tolerant ingestion layer
//! reports `ingest.skipped` (records dropped by an error policy),
//! `ingest.quarantined` (records written to a quarantine sidecar),
//! `ingest.retries` (transient I/O reads retried) and
//! `ingest.worker_panics` (isolated worker panics), all visible in
//! `--metrics-json` alongside the `json.*` parse counters.
//!
//! ```
//! use typefuse_obs::{span, Recorder};
//!
//! let rec = Recorder::enabled();
//! let records = rec.counter("json.records");
//! {
//!     let _outer = span!(rec, "reduce");
//!     let _inner = span!(rec, "reduce.level", 0);
//!     records.inc(3);
//! }
//! let report = rec.snapshot();
//! assert_eq!(report.counters["json.records"], 3);
//! assert_eq!(report.spans["reduce.level.0"].count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envelope;
pub mod eventlog;
pub mod histogram;
pub mod recorder;
pub mod report;
pub mod rss;
pub mod span;
pub mod telemetry;
pub mod trace;

pub mod json;

pub use envelope::{envelope, ENVELOPE_VERSION};
pub use eventlog::{Event, EventLog, Level};
pub use histogram::{bucket_bounds, bucket_index, Histogram, LogHistogram, BUCKETS};
pub use json::JsonWriter;
pub use recorder::{Counter, Gauge, Recorder};
pub use report::{
    BucketCount, HistogramReport, RunReport, SpanReport, StageReport, TaskReport,
    UtilizationReport, WorkerSlice,
};
pub use span::SpanGuard;
pub use telemetry::{series_key, TelemetryCell, TelemetryHub, TelemetrySnapshot};
pub use trace::TraceEvent;

/// Open a timed span on a [`Recorder`].
///
/// The first form names the span directly; additional arguments are
/// appended dot-separated, so `span!(rec, "reduce.level", 2)` opens a
/// span named `reduce.level.2`. Bind the guard (`let _span = …`) — the
/// span closes, and its duration is recorded, when the guard drops.
#[macro_export]
macro_rules! span {
    ($recorder:expr, $name:expr) => {
        $recorder.span($name)
    };
    ($recorder:expr, $name:expr, $($part:expr),+ $(,)?) => {
        $recorder.span({
            let mut __name = ::std::string::String::from($name);
            $(
                __name.push('.');
                __name.push_str(&$part.to_string());
            )+
            __name
        })
    };
}
