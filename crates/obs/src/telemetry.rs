//! The [`TelemetryHub`]: live, samplable metrics for resident services.
//!
//! The [`Recorder`](crate::Recorder) is built for *runs*: metrics
//! accumulate while a job executes and are snapshotted once at the end
//! into a [`RunReport`](crate::RunReport). A resident daemon
//! (`typefuse serve`) needs the complementary shape: a set of series
//! that poller and session threads update lock-free while the process
//! keeps running, sampled *on demand* — by a protocol request, a
//! streaming `watch` subscription, or a Prometheus scrape — into a
//! versioned snapshot.
//!
//! The hub keeps three families of series, all `u64` cells behind
//! relaxed atomics:
//!
//! * **counters** — monotonically increasing totals (records folded,
//!   sessions accepted);
//! * **gauges** — last-write-wins instantaneous values derived from the
//!   fold state (tail offset, lag bytes, published version, distinct
//!   shapes);
//! * **approx gauges** — wall-clock-derived values (uptime, sliding
//!   window records/s) kept in their own section so the deterministic
//!   sections stay byte-comparable.
//!
//! Series keys are Prometheus series identities — `name{label="v"}`,
//! built with [`series_key`] — so one key space serves both the JSON
//! snapshot and the text exposition. Sampling is a pure function of the
//! hub's atomic state plus a snapshot sequence number: for a fixed
//! update sequence, [`TelemetrySnapshot::to_json`] is byte-deterministic
//! (the `counters`/`gauges` sections, and the whole document when no
//! approx series were touched).
//!
//! ```
//! use typefuse_obs::telemetry::{series_key, TelemetryHub};
//!
//! let hub = TelemetryHub::new();
//! let folded = hub.counter(series_key(
//!     "typefuse_source_records",
//!     &[("source", "events")],
//! ));
//! folded.add(3);
//! let snap = hub.sample();
//! assert_eq!(snap.version, 1);
//! assert_eq!(
//!     snap.counters["typefuse_source_records{source=\"events\"}"],
//!     3
//! );
//! ```

use crate::JsonWriter;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which family a series belongs to (decides its Prometheus `# TYPE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    Counter,
    Gauge,
    Approx,
}

#[derive(Debug, Default)]
struct HubInner {
    /// Snapshot sequence number; bumped by every [`TelemetryHub::sample`].
    version: AtomicU64,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    approx: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
}

/// A shared registry of live metric series. Cloning is cheap and shares
/// state; registration takes a short mutex, updates through the
/// returned [`TelemetryCell`] are a single relaxed atomic op.
#[derive(Debug, Clone, Default)]
pub struct TelemetryHub {
    inner: Arc<HubInner>,
}

/// Hot-path handle to one series cell.
#[derive(Debug, Clone)]
pub struct TelemetryCell(Arc<AtomicU64>);

impl TelemetryCell {
    /// Add `n` (counters).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with `v` (gauges).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Render a Prometheus series identity: `name{label="value"}` (or bare
/// `name` without labels). Label values are escaped per the text
/// exposition format 0.0.4 (`\\`, `\"`, `\n`). The caller keeps `name`
/// and label names to `[a-zA-Z_][a-zA-Z0-9_]*`.
pub fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16);
    key.push_str(name);
    key.push('{');
    for (i, (label, value)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(label);
        key.push_str("=\"");
        for c in value.chars() {
            match c {
                '\\' => key.push_str("\\\\"),
                '"' => key.push_str("\\\""),
                '\n' => key.push_str("\\n"),
                c => key.push(c),
            }
        }
        key.push('"');
    }
    key.push('}');
    key
}

impl TelemetryHub {
    /// An empty hub at snapshot version 0.
    pub fn new() -> Self {
        TelemetryHub::default()
    }

    fn cell(map: &Mutex<BTreeMap<String, Arc<AtomicU64>>>, key: String) -> TelemetryCell {
        TelemetryCell(Arc::clone(
            map.lock()
                .expect("telemetry registry poisoned")
                .entry(key)
                .or_default(),
        ))
    }

    /// Handle to a monotonically increasing counter series, created at
    /// zero. Hoist handles out of hot loops.
    pub fn counter(&self, key: impl Into<String>) -> TelemetryCell {
        Self::cell(&self.inner.counters, key.into())
    }

    /// Handle to a last-write-wins gauge series, created at zero.
    pub fn gauge(&self, key: impl Into<String>) -> TelemetryCell {
        Self::cell(&self.inner.gauges, key.into())
    }

    /// Handle to a wall-clock-derived gauge series (uptime, rates).
    /// Kept in a separate snapshot section so `counters`/`gauges` stay
    /// byte-deterministic for a fixed fold sequence.
    pub fn approx_gauge(&self, key: impl Into<String>) -> TelemetryCell {
        Self::cell(&self.inner.approx, key.into())
    }

    fn read(map: &Mutex<BTreeMap<String, Arc<AtomicU64>>>) -> BTreeMap<String, u64> {
        map.lock()
            .expect("telemetry registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Sample every series into a snapshot, bumping the snapshot
    /// sequence number. The first sample of a hub has `version == 1`.
    pub fn sample(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            version: self.inner.version.fetch_add(1, Ordering::Relaxed) + 1,
            counters: Self::read(&self.inner.counters),
            gauges: Self::read(&self.inner.gauges),
            approx: Self::read(&self.inner.approx),
        }
    }
}

/// One point-in-time sample of a [`TelemetryHub`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Snapshot sequence number (1-based, one per [`TelemetryHub::sample`]).
    pub version: u64,
    /// Monotonic counter series, sorted by key.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauge series, sorted by key.
    pub gauges: BTreeMap<String, u64>,
    /// Wall-clock-derived series (uptime, rates), sorted by key.
    pub approx: BTreeMap<String, u64>,
}

impl TelemetrySnapshot {
    /// Byte-deterministic JSON rendering:
    /// `{"version":N,"counters":{…},"gauges":{…},"approx":{…}}`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("version");
        w.number(self.version);
        for (section, map) in [
            ("counters", &self.counters),
            ("gauges", &self.gauges),
            ("approx", &self.approx),
        ] {
            w.key(section);
            w.begin_object();
            for (key, value) in map {
                w.key(key);
                w.number(*value);
            }
            w.end_object();
        }
        w.end_object();
        w.finish()
    }

    /// Render as Prometheus text exposition format 0.0.4: one `# TYPE`
    /// line per metric family (the key prefix before `{`), then every
    /// series of that family, families and series in sorted order. The
    /// snapshot sequence number rides along as
    /// `typefuse_telemetry_snapshot_version`.
    pub fn to_prometheus(&self) -> String {
        type FamilySeries<'a> = (Family, Vec<(&'a str, u64)>);
        let mut out = String::new();
        let mut families: BTreeMap<&str, FamilySeries> = BTreeMap::new();
        for (family, map) in [
            (Family::Counter, &self.counters),
            (Family::Gauge, &self.gauges),
            (Family::Approx, &self.approx),
        ] {
            for (key, value) in map {
                let name = key.split('{').next().unwrap_or(key);
                families
                    .entry(name)
                    .or_insert((family, Vec::new()))
                    .1
                    .push((key, *value));
            }
        }
        for (name, (family, series)) in &families {
            let kind = match family {
                Family::Counter => "counter",
                Family::Gauge | Family::Approx => "gauge",
            };
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            for (key, value) in series {
                out.push_str(key);
                out.push(' ');
                out.push_str(&value.to_string());
                out.push('\n');
            }
        }
        out.push_str("# TYPE typefuse_telemetry_snapshot_version gauge\n");
        out.push_str(&format!(
            "typefuse_telemetry_snapshot_version {}\n",
            self.version
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_keys_render_and_escape_labels() {
        assert_eq!(series_key("up", &[]), "up");
        assert_eq!(
            series_key("a_total", &[("source", "events"), ("kind", "file")]),
            "a_total{source=\"events\",kind=\"file\"}"
        );
        assert_eq!(
            series_key("a", &[("s", "q\"b\\c\nd")]),
            "a{s=\"q\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn cells_are_lock_free_handles_into_shared_state() {
        let hub = TelemetryHub::new();
        let c = hub.counter("n_total");
        let same = hub.clone().counter("n_total");
        c.add(2);
        same.add(3);
        hub.gauge("depth").set(7);
        hub.gauge("depth").set(4); // last write wins
        let snap = hub.sample();
        assert_eq!(snap.counters["n_total"], 5);
        assert_eq!(snap.gauges["depth"], 4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn sampling_bumps_the_version() {
        let hub = TelemetryHub::new();
        assert_eq!(hub.sample().version, 1);
        assert_eq!(hub.sample().version, 2);
    }

    #[test]
    fn snapshots_are_byte_deterministic_for_a_fixed_update_sequence() {
        let build = || {
            let hub = TelemetryHub::new();
            for source in ["a", "b"] {
                let key = series_key("typefuse_source_records", &[("source", source)]);
                hub.counter(key).add(5);
                hub.gauge(series_key(
                    "typefuse_source_lag_bytes",
                    &[("source", source)],
                ))
                .set(128);
            }
            hub
        };
        let (one, two) = (build().sample(), build().sample());
        assert_eq!(one.to_json(), two.to_json());
        assert_eq!(one.to_prometheus(), two.to_prometheus());
    }

    #[test]
    fn json_shape_is_stable() {
        let hub = TelemetryHub::new();
        hub.counter("b_total").add(1);
        hub.counter("a_total").add(2);
        hub.approx_gauge("uptime_ms").set(9);
        assert_eq!(
            hub.sample().to_json(),
            r#"{"version":1,"counters":{"a_total":2,"b_total":1},"gauges":{},"approx":{"uptime_ms":9}}"#
        );
    }

    #[test]
    fn prometheus_exposition_golden() {
        let hub = TelemetryHub::new();
        hub.counter(series_key(
            "typefuse_source_records",
            &[("source", "events")],
        ))
        .add(5);
        hub.counter(series_key("typefuse_source_records", &[("source", "feed")]))
            .add(2);
        hub.gauge(series_key(
            "typefuse_source_lag_bytes",
            &[("source", "events")],
        ))
        .set(64);
        hub.approx_gauge("typefuse_uptime_ms").set(1500);
        let expected = "\
# TYPE typefuse_source_lag_bytes gauge
typefuse_source_lag_bytes{source=\"events\"} 64
# TYPE typefuse_source_records counter
typefuse_source_records{source=\"events\"} 5
typefuse_source_records{source=\"feed\"} 2
# TYPE typefuse_uptime_ms gauge
typefuse_uptime_ms 1500
# TYPE typefuse_telemetry_snapshot_version gauge
typefuse_telemetry_snapshot_version 1
";
        assert_eq!(hub.sample().to_prometheus(), expected);
    }
}
