//! The shared versioned JSON response envelope.
//!
//! Every JSON document typefuse emits — `--metrics-json`,
//! `--profile-json`, `bench` trajectories, `sim --report-json` and the
//! `typefuse serve` wire protocol — is wrapped in the same top level:
//!
//! ```json
//! {"schema_version": 1, "kind": "<kind>", "payload": { ... }}
//! ```
//!
//! `schema_version` versions the envelope itself (readers reject
//! unknown versions instead of misreading a future layout), `kind`
//! names the payload shape, and `payload` carries the actual document
//! unchanged. The writer lives here because this crate owns the
//! byte-deterministic [`crate::JsonWriter`] every report
//! already serializes with; the parsing side lives in `typefuse-json`
//! (which sits above this crate in the dependency graph).

use crate::JsonWriter;

/// Current envelope layout version. Readers must reject anything else.
pub const ENVELOPE_VERSION: u64 = 1;

/// Wrap a pre-serialized JSON payload in the versioned envelope.
///
/// `payload_json` must be a complete JSON value (object, array, …); it
/// is spliced in verbatim so byte-deterministic payloads stay
/// byte-deterministic inside the envelope.
///
/// ```
/// use typefuse_obs::envelope::envelope;
/// assert_eq!(
///     envelope("metrics", r#"{"counters":{}}"#),
///     r#"{"schema_version":1,"kind":"metrics","payload":{"counters":{}}}"#
/// );
/// ```
pub fn envelope(kind: &str, payload_json: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema_version");
    w.number(ENVELOPE_VERSION);
    w.key("kind");
    w.string(kind);
    w.key("payload");
    w.raw(payload_json);
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_objects_arrays_and_scalars() {
        assert_eq!(
            envelope("bench", "[1,2]"),
            r#"{"schema_version":1,"kind":"bench","payload":[1,2]}"#
        );
        assert_eq!(
            envelope("error", r#""boom""#),
            r#"{"schema_version":1,"kind":"error","payload":"boom"}"#
        );
    }

    #[test]
    fn kind_is_escaped() {
        assert_eq!(
            envelope("a\"b", "{}"),
            "{\"schema_version\":1,\"kind\":\"a\\\"b\",\"payload\":{}}"
        );
    }
}
