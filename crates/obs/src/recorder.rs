//! The [`Recorder`]: a mergeable registry of counters, gauges,
//! histograms, span statistics and trace events.

use crate::histogram::{Histogram, HistogramCore};
use crate::report::{RunReport, SpanReport};
use crate::span::SpanGuard;
use crate::trace::TraceEvent;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SpanStat {
    pub(crate) count: u64,
    pub(crate) total: Duration,
    pub(crate) max: Duration,
}

impl SpanStat {
    fn absorb(&mut self, other: SpanStat) {
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

#[derive(Debug)]
pub(crate) struct Inner {
    /// Zero point for trace-event timestamps.
    pub(crate) epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    pub(crate) spans: Mutex<BTreeMap<String, SpanStat>>,
    pub(crate) trace: Mutex<Vec<TraceEvent>>,
}

/// A handle to a shared metrics registry, or a no-op when disabled.
///
/// Cloning is cheap and shares state: clones handed to worker threads
/// all feed the same registry through atomics. Independently *created*
/// recorders (one per partition, say) are combined afterwards with
/// [`Recorder::merge_from`], which is associative and commutative in
/// the same sense as schema fusion — counters add, gauges take the
/// max, histograms add bucket-wise, span stats add, traces concatenate
/// on a common timeline.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    pub(crate) inner: Option<Arc<Inner>>,
}

/// Hot-loop handle to a named counter; no-op when disabled.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add `n` to the counter.
    pub fn inc(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Hot-loop handle to a named max-gauge; no-op when disabled.
///
/// Gauges here keep the *maximum* value ever set. Max (unlike
/// last-write-wins) is associative and commutative, which is what lets
/// per-partition recorders merge in any order and still agree.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Raise the gauge to `value` if it is higher than the current max.
    pub fn set_max(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

impl Recorder {
    /// A live recorder with an empty registry.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(BTreeMap::new()),
                trace: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A recorder whose every operation is a no-op.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this recorder actually records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Handle to the named counter, creating it at zero. Hoist the
    /// handle out of hot loops: `inc` is one relaxed atomic add.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .counters
                    .lock()
                    .expect("counter registry poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Handle to the named max-gauge, creating it at zero.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .gauges
                    .lock()
                    .expect("gauge registry poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Handle to the named histogram, creating it empty.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .histograms
                    .lock()
                    .expect("histogram registry poisoned")
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new())),
            )
        }))
    }

    /// One-shot counter add (prefer [`Recorder::counter`] in loops).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).inc(n);
    }

    /// One-shot gauge raise (prefer [`Recorder::gauge`] in loops).
    pub fn gauge_max(&self, name: &str, value: u64) {
        self.gauge(name).set_max(value);
    }

    /// One-shot histogram sample (prefer [`Recorder::histogram`] in loops).
    pub fn record(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    /// Current value of a counter, 0 if absent or disabled.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            inner
                .counters
                .lock()
                .expect("counter registry poisoned")
                .get(name)
                .map_or(0, |c| c.load(Ordering::Relaxed))
        })
    }

    /// Open a timed span (see the [`span!`](crate::span!) macro for the
    /// usual dotted-name construction). The returned guard records the
    /// span's duration and a trace event when dropped.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        SpanGuard::open(self.inner.clone(), name.into())
    }

    /// Record one completed span with an externally-measured duration,
    /// without opening a guard. Updates the span statistics only — no
    /// trace event is emitted, since there is no start timestamp.
    pub fn record_span(&self, name: &str, duration: Duration) {
        if let Some(inner) = &self.inner {
            inner
                .spans
                .lock()
                .expect("span registry poisoned")
                .entry(name.to_string())
                .or_default()
                .absorb(SpanStat {
                    count: 1,
                    total: duration,
                    max: duration,
                });
        }
    }

    /// Fold every metric of `other` into `self`.
    ///
    /// The operation is associative and commutative up to trace-event
    /// ordering (events keep their wall-clock timestamps, re-based onto
    /// `self`'s epoch, but the vector order depends on merge order).
    /// Merging a recorder into itself, or merging with a disabled
    /// recorder on either side, is a no-op.
    pub fn merge_from(&self, other: &Recorder) {
        let (Some(mine), Some(theirs)) = (&self.inner, &other.inner) else {
            return;
        };
        if Arc::ptr_eq(mine, theirs) {
            return;
        }
        for (name, cell) in theirs.counters.lock().expect("poisoned").iter() {
            let n = cell.load(Ordering::Relaxed);
            if n > 0 {
                self.counter(name).inc(n);
            }
        }
        for (name, cell) in theirs.gauges.lock().expect("poisoned").iter() {
            self.gauge(name).set_max(cell.load(Ordering::Relaxed));
        }
        for (name, core) in theirs.histograms.lock().expect("poisoned").iter() {
            if let Histogram(Some(mine_core)) = self.histogram(name) {
                mine_core.merge_from(core);
            }
        }
        {
            let mut mine_spans = mine.spans.lock().expect("poisoned");
            for (name, stat) in theirs.spans.lock().expect("poisoned").iter() {
                mine_spans.entry(name.clone()).or_default().absorb(*stat);
            }
        }
        {
            // Re-base the other timeline onto ours so Perfetto shows a
            // single consistent clock.
            let forward = theirs.epoch.saturating_duration_since(mine.epoch);
            let backward = mine.epoch.saturating_duration_since(theirs.epoch);
            let mut mine_trace = mine.trace.lock().expect("poisoned");
            for event in theirs.trace.lock().expect("poisoned").iter() {
                let mut event = event.clone();
                event.ts_us = (event.ts_us + forward.as_micros() as u64)
                    .saturating_sub(backward.as_micros() as u64);
                mine_trace.push(event);
            }
        }
    }

    /// Snapshot every metric into a serializable [`RunReport`].
    ///
    /// Stage timings (`stages`), derived float values (`values`) and
    /// free-form metadata (`meta`) are not recorded here — callers that
    /// own them (the pipeline, the bench harness) fill those fields on
    /// the returned report.
    pub fn snapshot(&self) -> RunReport {
        let mut report = RunReport::default();
        let Some(inner) = &self.inner else {
            return report;
        };
        for (name, cell) in inner.counters.lock().expect("poisoned").iter() {
            report
                .counters
                .insert(name.clone(), cell.load(Ordering::Relaxed));
        }
        for (name, cell) in inner.gauges.lock().expect("poisoned").iter() {
            report
                .gauges
                .insert(name.clone(), cell.load(Ordering::Relaxed));
        }
        for (name, core) in inner.histograms.lock().expect("poisoned").iter() {
            report.histograms.insert(
                name.clone(),
                crate::report::HistogramReport::from_core(core),
            );
        }
        for (name, stat) in inner.spans.lock().expect("poisoned").iter() {
            report.spans.insert(
                name.clone(),
                SpanReport {
                    count: stat.count,
                    total_ns: stat.total.as_nanos() as u64,
                    max_ns: stat.max.as_nanos() as u64,
                },
            );
        }
        report
    }

    /// All trace events captured so far, in emission order.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| {
            inner.trace.lock().expect("poisoned").clone()
        })
    }

    /// Serialize the captured spans as Chrome `trace_event` JSON,
    /// loadable in Perfetto or `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        crate::trace::to_chrome_json(&self.trace_events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        let c = rec.counter("x");
        c.inc(5);
        rec.record("h", 3);
        rec.gauge_max("g", 9);
        drop(rec.span("s"));
        assert_eq!(c.get(), 0);
        assert_eq!(rec.counter_value("x"), 0);
        let report = rec.snapshot();
        assert!(report.counters.is_empty());
        assert!(report.spans.is_empty());
        assert!(rec.trace_events().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.counter("shared").inc(2);
        rec.counter("shared").inc(3);
        assert_eq!(rec.counter_value("shared"), 5);
    }

    #[test]
    fn merge_is_identity_on_self_and_disabled() {
        let rec = Recorder::enabled();
        rec.add("c", 7);
        rec.merge_from(&rec.clone()); // same Arc: must not double
        assert_eq!(rec.counter_value("c"), 7);
        rec.merge_from(&Recorder::disabled());
        assert_eq!(rec.counter_value("c"), 7);
        let disabled = Recorder::disabled();
        disabled.merge_from(&rec);
        assert!(disabled.snapshot().counters.is_empty());
    }

    #[test]
    fn merge_combines_each_metric_kind() {
        let a = Recorder::enabled();
        let b = Recorder::enabled();
        a.add("n", 1);
        b.add("n", 2);
        a.gauge_max("depth", 3);
        b.gauge_max("depth", 9);
        a.record("width", 4);
        b.record("width", 4);
        b.record("width", 1000);
        a.record_span("s", Duration::from_millis(2));
        b.record_span("s", Duration::from_millis(5));
        a.merge_from(&b);
        let report = a.snapshot();
        assert_eq!(report.counters["n"], 3);
        assert_eq!(report.gauges["depth"], 9);
        let width = &report.histograms["width"];
        assert_eq!(width.count, 3);
        assert_eq!(width.sum, 1008);
        assert_eq!(width.min, 4);
        assert_eq!(width.max, 1000);
        let span = &report.spans["s"];
        assert_eq!(span.count, 2);
        assert_eq!(span.max_ns, 5_000_000);
        assert_eq!(span.total_ns, 7_000_000);
    }
}
