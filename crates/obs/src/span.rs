//! Timed spans: RAII guards that measure wall-clock duration and emit
//! Chrome trace events with stable per-thread track ids.

use crate::recorder::Inner;
use crate::trace::TraceEvent;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// Small, dense id for the current thread, assigned on first use.
/// Used as the `tid` of trace events so each worker gets its own track
/// in Perfetto.
pub(crate) fn current_thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// RAII guard for an open span; created via
/// [`Recorder::span`](crate::Recorder::span) or the
/// [`span!`](crate::span!) macro.
///
/// On drop, the elapsed time is added to the span's aggregate stats and
/// a complete (`"ph": "X"`) trace event is pushed. Guards on the same
/// thread nest naturally — an inner guard drops before its outer one,
/// and Chrome's trace model renders containment as hierarchy.
#[derive(Debug)]
#[must_use = "a span measures the time until its guard is dropped; bind it with `let _span = …`"]
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    name: String,
    start: Option<Instant>,
}

impl SpanGuard {
    pub(crate) fn open(inner: Option<Arc<Inner>>, name: String) -> Self {
        // `Instant::now` is only paid when the recorder is live.
        let start = inner.as_ref().map(|_| Instant::now());
        SpanGuard { inner, name, start }
    }

    /// The span's full dotted name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(inner), Some(start)) = (&self.inner, self.start) else {
            return;
        };
        let duration = start.elapsed();
        let name = std::mem::take(&mut self.name);
        {
            let mut spans = inner.spans.lock().expect("span registry poisoned");
            let stat = spans.entry(name.clone()).or_default();
            stat.count += 1;
            stat.total += duration;
            stat.max = stat.max.max(duration);
        }
        let ts_us = start.saturating_duration_since(inner.epoch).as_micros() as u64;
        inner
            .trace
            .lock()
            .expect("trace buffer poisoned")
            .push(TraceEvent {
                name,
                ts_us,
                dur_us: duration.as_micros() as u64,
                tid: current_thread_id(),
            });
    }
}

#[cfg(test)]
mod tests {
    use crate::Recorder;

    #[test]
    fn span_records_stats_and_trace_event() {
        let rec = Recorder::enabled();
        {
            let guard = rec.span("outer");
            assert_eq!(guard.name(), "outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let report = rec.snapshot();
        assert_eq!(report.spans["outer"].count, 1);
        assert!(report.spans["outer"].total_ns >= 1_000_000);
        let events = rec.trace_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "outer");
    }

    #[test]
    fn nested_spans_close_inner_first_and_are_contained() {
        let rec = Recorder::enabled();
        {
            let _outer = crate::span!(rec, "outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = crate::span!(rec, "outer.inner", 7);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let events = rec.trace_events();
        assert_eq!(events.len(), 2);
        // Complete events are pushed at close time: inner first.
        let inner = &events[0];
        let outer = &events[1];
        assert_eq!(inner.name, "outer.inner.7");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.tid, outer.tid);
        // Containment on the common timeline: that is what makes the
        // Chrome trace model render the hierarchy.
        assert!(outer.ts_us <= inner.ts_us);
        assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us);
    }

    #[test]
    fn same_name_spans_aggregate() {
        let rec = Recorder::enabled();
        for _ in 0..3 {
            let _s = rec.span("repeat");
        }
        let report = rec.snapshot();
        assert_eq!(report.spans["repeat"].count, 3);
        assert_eq!(rec.trace_events().len(), 3);
    }

    #[test]
    fn threads_get_distinct_track_ids() {
        let rec = Recorder::enabled();
        let r2 = rec.clone();
        std::thread::spawn(move || drop(r2.span("worker")))
            .join()
            .expect("worker thread panicked");
        drop(rec.span("main"));
        let events = rec.trace_events();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].tid, events[1].tid);
    }
}
