//! Minimal JSON writer used by [`crate::report`], [`crate::trace`] and
//! downstream report emitters (e.g. the profiler's dataset report).
//!
//! This crate must not depend on anything (including the workspace's
//! own `typefuse-json`, which sits *above* it in the dependency graph
//! once instrumented), so serialization is a small comma-tracking
//! string builder with correct string escaping. The writer is public so
//! reports built elsewhere serialize with the exact same number and
//! float formatting as [`RunReport`](crate::RunReport) —
//! byte-determinism of those reports rests on this single formatter.

/// Streaming JSON writer over a growing `String`.
///
/// The caller is responsible for structural validity (matching
/// `begin_*`/`end_*`, keys only inside objects); the writer handles
/// commas and escaping.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Whether the next value at the current nesting level needs a
    /// leading comma, one entry per open container.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// A writer with empty output.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn before_value(&mut self) {
        if let Some(needs) = self.needs_comma.last_mut() {
            if *needs {
                self.out.push(',');
            }
            *needs = true;
        }
    }

    /// Open a `{`.
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.needs_comma.push(false);
    }

    /// Close the current object.
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    /// Open a `[`.
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.needs_comma.push(false);
    }

    /// Close the current array.
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    /// Write an object key; the following call writes its value.
    pub fn key(&mut self, key: &str) {
        self.before_value();
        push_escaped(&mut self.out, key);
        self.out.push(':');
        // The value that follows must not get its own comma.
        if let Some(needs) = self.needs_comma.last_mut() {
            *needs = false;
        }
    }

    /// Write an escaped string value.
    pub fn string(&mut self, value: &str) {
        self.before_value();
        push_escaped(&mut self.out, value);
    }

    /// Write a boolean literal.
    pub fn bool_value(&mut self, value: bool) {
        self.before_value();
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Write an unsigned integer value.
    pub fn number(&mut self, value: u64) {
        self.before_value();
        self.out.push_str(&value.to_string());
    }

    /// Write a float; non-finite values become `null` since JSON has no
    /// representation for them.
    pub fn float(&mut self, value: f64) {
        self.before_value();
        if value.is_finite() {
            let mut text = format!("{value}");
            // Keep output unambiguous as a float for readers that care.
            if !text.contains(['.', 'e', 'E']) {
                text.push_str(".0");
            }
            self.out.push_str(&text);
        } else {
            self.out.push_str("null");
        }
    }

    /// Splice pre-serialized JSON in as a value.
    ///
    /// The caller guarantees `json` is a complete, valid JSON value;
    /// the writer only handles the surrounding comma. This is how the
    /// versioned response envelope embeds payloads that were serialized
    /// elsewhere (reports, schemas) without re-parsing them.
    pub fn raw(&mut self, json: &str) {
        self.before_value();
        self.out.push_str(json);
    }

    /// Consume the writer, returning the JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.needs_comma.is_empty(), "unclosed JSON container");
        self.out
    }
}

fn push_escaped(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures_and_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.number(1);
        w.key("b");
        w.begin_array();
        w.number(2);
        w.string("three");
        w.begin_object();
        w.end_object();
        w.end_array();
        w.key("c");
        w.float(0.5);
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":[2,"three",{}],"c":0.5}"#);
    }

    #[test]
    fn escaping_controls_and_quotes() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\n\u{1}");
        assert_eq!(w.finish(), concat!(r#""a\"b\\c\n"#, r#"\u0001""#));
    }

    #[test]
    fn floats_stay_floats_and_nan_is_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.float(2.0);
        w.float(f64::NAN);
        w.end_array();
        assert_eq!(w.finish(), "[2.0,null]");
    }
}
