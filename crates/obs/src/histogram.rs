//! Log₂-bucketed histograms over `u64` samples.
//!
//! Bucket 0 holds the value 0; bucket `i ≥ 1` holds values in
//! `[2^(i-1), 2^i - 1]` (the top bucket is clipped to `u64::MAX`). With
//! [`BUCKETS`] = 65 slots a histogram covers the full `u64` range with
//! relative error bounded by 2×, which is plenty for union widths,
//! record widths and nanosecond timings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: one for zero plus one per bit position.
pub const BUCKETS: usize = 65;

/// Bucket index for a sample value.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `(low, high)` value bounds of a bucket index.
///
/// Panics when `index >= BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

/// Shared histogram state: per-bucket counts plus sum/count/min/max.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Fold `other` into `self`: bucket-wise and moment-wise addition,
    /// min/max by comparison. Associative and commutative because every
    /// component operation is.
    pub(crate) fn merge_from(&self, other: &HistogramCore) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// A plain, mergeable log₂ histogram for embedding inside data-plane
/// accumulators (per-path profiles, partition-local statistics).
///
/// Unlike the recorder-owned [`Histogram`] handle this is a value type:
/// no atomics, no sharing, `Clone`/`PartialEq`, and a by-`&mut`
/// [`record`](LogHistogram::record). It uses the same bucket layout as
/// the recorder histograms ([`bucket_index`] / [`bucket_bounds`]), so
/// both convert to the same
/// [`HistogramReport`](crate::HistogramReport) shape. Merging is
/// bucket-wise and moment-wise addition with min/max comparison —
/// associative and commutative, which is what lets accumulators
/// carrying these merge in any partition order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram (the merge identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold `other` in. Associative and commutative with
    /// [`LogHistogram::new`] as identity.
    pub fn merge_from(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Serialize to the compact checkpoint form:
    /// `count,sum,min,max;idx:n,idx:n,…` with sparse buckets, all
    /// fields exact decimal `u64`. [`LogHistogram::from_compact`]
    /// restores the identical value, including the `u64::MAX` min
    /// sentinel of an empty histogram.
    pub fn to_compact(&self) -> String {
        let mut out = format!("{},{},{},{};", self.count, self.sum, self.min, self.max);
        let mut first = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{i}:{n}"));
        }
        out
    }

    /// Parse a [`LogHistogram::to_compact`] encoding.
    pub fn from_compact(text: &str) -> Result<Self, String> {
        let (moments, buckets) = text
            .split_once(';')
            .ok_or_else(|| "histogram encoding missing `;`".to_string())?;
        let parts: Vec<&str> = moments.split(',').collect();
        let [count, sum, min, max] = parts[..] else {
            return Err(format!("expected 4 moments, got {}", parts.len()));
        };
        let parse =
            |s: &str| -> Result<u64, String> { s.parse().map_err(|e| format!("bad u64: {e}")) };
        let mut hist = LogHistogram {
            buckets: [0; BUCKETS],
            count: parse(count)?,
            sum: parse(sum)?,
            min: parse(min)?,
            max: parse(max)?,
        };
        for pair in buckets.split(',').filter(|p| !p.is_empty()) {
            let (idx, n) = pair
                .split_once(':')
                .ok_or_else(|| format!("bad bucket pair {pair:?}"))?;
            let idx: usize = idx.parse().map_err(|e| format!("bad bucket index: {e}"))?;
            if idx >= BUCKETS {
                return Err(format!("bucket index {idx} out of range"));
            }
            hist.buckets[idx] = parse(n)?;
        }
        Ok(hist)
    }

    /// Snapshot as a [`HistogramReport`](crate::HistogramReport) —
    /// identical shape to the recorder histograms, so the same
    /// serialization and quantile estimation apply.
    pub fn report(&self) -> crate::HistogramReport {
        crate::HistogramReport {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(i, &n)| {
                    let (lo, hi) = bucket_bounds(i);
                    crate::BucketCount { lo, hi, count: n }
                })
                .collect(),
        }
    }
}

/// Hot-loop handle to a named histogram; no-op when the recorder that
/// produced it is disabled.
#[derive(Debug, Clone)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// Record one sample.
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_gets_its_own_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_bounds(0), (0, 0));
    }

    #[test]
    fn power_of_two_boundaries() {
        // Each bucket i >= 1 covers [2^(i-1), 2^i - 1]: the boundary
        // values must land exactly on bucket edges.
        for i in 1..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "low edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "high edge of bucket {i}");
            if lo > 0 {
                assert_eq!(bucket_index(lo - 1), i - 1, "below bucket {i}");
            }
        }
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bounds_tile_the_u64_range() {
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} leaves a gap");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(i, BUCKETS - 1);
                return;
            }
            expected_lo = hi + 1;
        }
        panic!("buckets never reached u64::MAX");
    }

    #[test]
    fn log_histogram_records_and_merges() {
        let mut a = LogHistogram::new();
        assert!(a.is_empty());
        for v in [0, 1, 5, 1000] {
            a.record(v);
        }
        let mut b = LogHistogram::new();
        b.record(7);

        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba, "merge is commutative");

        let mut with_identity = ab.clone();
        with_identity.merge_from(&LogHistogram::new());
        assert_eq!(with_identity, ab, "empty is the identity");

        let report = ab.report();
        assert_eq!(report.count, 5);
        assert_eq!(report.sum, 1013);
        assert_eq!(report.min, 0);
        assert_eq!(report.max, 1000);
        assert_eq!(
            report.buckets.iter().map(|b| b.count).sum::<u64>(),
            report.count
        );
    }

    #[test]
    fn compact_encoding_round_trips_exactly() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 5, 1000, 1 << 62] {
            h.record(v);
        }
        assert_eq!(LogHistogram::from_compact(&h.to_compact()).unwrap(), h);
        // The empty histogram keeps its u64::MAX min sentinel so that
        // later merges stay correct.
        let empty = LogHistogram::new();
        let back = LogHistogram::from_compact(&empty.to_compact()).unwrap();
        assert_eq!(back, empty);
        let mut merged = back;
        merged.record(3);
        assert_eq!(merged.report().min, 3);
        for bad in ["", "1,2,3;", "1,2,3,4", "1,2,3,4;x", "1,2,3,4;99:1"] {
            assert!(LogHistogram::from_compact(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn empty_log_histogram_reports_zero_min() {
        let report = LogHistogram::new().report();
        assert_eq!((report.count, report.min, report.max), (0, 0, 0));
        assert!(report.buckets.is_empty());
    }

    #[test]
    fn core_tracks_moments() {
        let core = HistogramCore::new();
        for v in [0, 1, 5, 1000] {
            core.record(v);
        }
        assert_eq!(core.count.load(Ordering::Relaxed), 4);
        assert_eq!(core.sum.load(Ordering::Relaxed), 1006);
        assert_eq!(core.min.load(Ordering::Relaxed), 0);
        assert_eq!(core.max.load(Ordering::Relaxed), 1000);
    }
}
